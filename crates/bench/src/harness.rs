//! Experiment execution: single runs, seed sweeps, medians, and the
//! machine-readable `BENCH_rrpa.json` baseline writer.
//!
//! Seed sweeps fan out over a rayon-style parallel iterator; every seed is
//! an independent optimization, so records are bitwise identical for any
//! thread count. [`sweep_threads`] resolves the worker count from an
//! explicit `--threads` value or the `RAYON_NUM_THREADS` environment
//! variable, falling back to the machine's parallelism.

use mpq_catalog::generator::{generate, generate_workload, GeneratorConfig, WorkloadConfig};
use mpq_catalog::graph::Topology;
use mpq_cloud::model::CloudCostModel;
use mpq_core::grid_space::GridSpace;
use mpq_core::pwl_space::PwlSpace;
use mpq_core::rrpa::optimize;
use mpq_core::session::{OptimizerSession, SessionConfig};
use mpq_core::space::MpqSpace;
use mpq_core::OptimizerConfig;
use mpq_lp::{FastPathBreakdown, FastPathSite};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::Instant;

/// Which [`mpq_core::space::MpqSpace`] backend a benchmark run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// [`GridSpace`] — grid-aligned PWL-RRPA (the default).
    Grid,
    /// [`PwlSpace`] — the paper-faithful Algorithms 2/3 backend.
    Pwl,
}

impl SpaceKind {
    /// Parses a `--space` CLI value.
    pub fn parse(s: &str) -> Option<SpaceKind> {
        match s {
            "grid" => Some(SpaceKind::Grid),
            "pwl" => Some(SpaceKind::Pwl),
            _ => None,
        }
    }

    /// The CLI / JSON name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            SpaceKind::Grid => "grid",
            SpaceKind::Pwl => "pwl",
        }
    }
}

/// Metrics of a single optimization run (one random query).
#[derive(Debug, Clone, Copy)]
pub struct RunRecord {
    /// Optimization wall time in milliseconds.
    pub time_ms: f64,
    /// Plans generated, including partial and pruned plans.
    pub plans_created: u64,
    /// Linear programs solved.
    pub lps_solved: u64,
    /// Plans in the final Pareto plan set.
    pub final_plans: usize,
    /// Per-site fast-path hit / LP-fallback split of the run (where the
    /// remaining LP tail lives).
    pub lp_breakdown: FastPathBreakdown,
}

/// Runs PWL-RRPA (grid space) on one random query from the paper's
/// generator setup.
pub fn run_once(
    num_tables: usize,
    topology: Topology,
    num_params: usize,
    seed: u64,
    config: &OptimizerConfig,
) -> RunRecord {
    run_once_in(
        SpaceKind::Grid,
        num_tables,
        topology,
        num_params,
        seed,
        config,
    )
}

/// Runs RRPA on one random query from the paper's generator setup, using
/// the requested space backend.
pub fn run_once_in(
    kind: SpaceKind,
    num_tables: usize,
    topology: Topology,
    num_params: usize,
    seed: u64,
    config: &OptimizerConfig,
) -> RunRecord {
    let query = generate(
        &GeneratorConfig::paper(num_tables, topology, num_params),
        &mut StdRng::seed_from_u64(seed),
    );
    let model = CloudCostModel::default();
    let metrics = model_num_metrics(&model);
    let (solution_stats, lp_breakdown) = match kind {
        SpaceKind::Grid => {
            let space = GridSpace::for_unit_box(num_params, config, metrics)
                .expect("valid grid configuration");
            let stats = optimize(&query, &model, &space, config).stats;
            (stats, space.lp_ctx().fastpath_breakdown())
        }
        SpaceKind::Pwl => {
            let space = PwlSpace::for_unit_box(num_params, config, metrics)
                .expect("valid grid configuration");
            let stats = optimize(&query, &model, &space, config).stats;
            (stats, space.lp_ctx().fastpath_breakdown())
        }
    };
    RunRecord {
        time_ms: solution_stats.elapsed.as_secs_f64() * 1e3,
        plans_created: solution_stats.plans_created,
        lps_solved: solution_stats.lps_solved,
        final_plans: solution_stats.final_plan_count,
        lp_breakdown,
    }
}

fn model_num_metrics(model: &CloudCostModel) -> usize {
    use mpq_cloud::model::ParametricCostModel;
    model.num_metrics()
}

/// Metrics of one batched workload run (a whole batch through one
/// [`OptimizerSession`]). Counters are summed over the batch's queries;
/// LPs come from the session-shared space, hits/misses from the session
/// cache (zero for uncached sessions).
#[derive(Debug, Clone, Copy)]
pub struct BatchRecord {
    /// Whole-batch wall time in milliseconds.
    pub time_ms: f64,
    /// Plans generated over all queries.
    pub plans_created: u64,
    /// Linear programs solved over all queries (the exact **per-batch
    /// delta** of the session's shared counter, via
    /// [`OptimizerSession::optimize_batch_counted`]).
    pub lps_solved: u64,
    /// Final Pareto-set sizes summed over all queries.
    pub final_plans: u64,
    /// Cost-lifting cache hits.
    pub cache_hits: u64,
    /// Cost-lifting cache misses (= distinct operator cost shapes).
    pub cache_misses: u64,
    /// Median per-query LP count across the batch
    /// (`OptStats::lps_solved_query`; exact for the single-threaded
    /// batch measurements).
    pub lps_query_median: f64,
}

/// One batched-workload configuration: the per-query shape plus the batch
/// size and table-overlap ratio.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Tables per query.
    pub num_tables: usize,
    /// Join-graph topology.
    pub topology: Topology,
    /// Parameters per query.
    pub num_params: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Table-overlap ratio (`0.0` = independent, `1.0` = identical).
    pub overlap: f64,
}

/// Runs one batched workload — [`WorkloadSpec::batch`] random queries with
/// the given table-overlap ratio — through an [`OptimizerSession`], with
/// or without the cost-lifting cache.
pub fn run_workload_in(
    kind: SpaceKind,
    spec: &WorkloadSpec,
    seed: u64,
    config: &OptimizerConfig,
    cached: bool,
) -> BatchRecord {
    let wcfg = WorkloadConfig::uniform(
        GeneratorConfig::paper(spec.num_tables, spec.topology, spec.num_params),
        spec.batch,
        spec.overlap,
    );
    let workload = generate_workload(&wcfg, &mut StdRng::seed_from_u64(seed));
    let model = CloudCostModel::default();
    let metrics = model_num_metrics(&model);
    match kind {
        SpaceKind::Grid => {
            let space = GridSpace::for_unit_box(spec.num_params, config, metrics)
                .expect("valid grid configuration");
            run_batch(space, &model, config, &workload.queries, cached)
        }
        SpaceKind::Pwl => {
            let space = PwlSpace::for_unit_box(spec.num_params, config, metrics)
                .expect("valid grid configuration");
            run_batch(space, &model, config, &workload.queries, cached)
        }
    }
}

fn run_batch<S>(
    space: S,
    model: &CloudCostModel,
    config: &OptimizerConfig,
    queries: &[mpq_catalog::Query],
    cached: bool,
) -> BatchRecord
where
    S: MpqSpace + Sync,
    S::Cost: Send + Sync,
    S::Region: Send + Sync,
{
    // Batch rows isolate the cost-lifting layer: the subtree cache (on by
    // default in production sessions) is explicitly disabled on both
    // sides so `speedup` keeps measuring lift reuse alone and the
    // committed `batch_entries` stay reproducible. The subtree layer has
    // its own rows (`mqo_entries`) and the service rows measure the
    // production default.
    let mut session_cfg = SessionConfig::new(config.clone()).without_subtree_cache();
    session_cfg.cached = cached;
    let session = OptimizerSession::with_config(space, model, session_cfg);
    let start = Instant::now();
    // The per-batch delta accessor: self-describing (per-solution
    // `stats.lps_solved` snapshots the session-cumulative counter, which
    // only happens to equal the batch cost on a fresh session).
    let (solutions, batch_lps) = session.optimize_batch_counted(queries);
    let time_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = session.cache_stats();
    let mut per_query: Vec<f64> = solutions
        .iter()
        .map(|s| s.stats.lps_solved_query as f64)
        .collect();
    BatchRecord {
        time_ms,
        plans_created: solutions.iter().map(|s| s.stats.plans_created).sum(),
        lps_solved: batch_lps,
        final_plans: solutions
            .iter()
            .map(|s| s.stats.final_plan_count as u64)
            .sum(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        lps_query_median: median(&mut per_query),
    }
}

/// Metrics of one shared-subplan ("MQO") workload run: a whole batch
/// through one [`OptimizerSession`] with **both** the cost-lifting cache
/// and the subtree-frontier cache enabled. Plans must equal the
/// lift-only runs bit for bit (memoization is pure); the subtree
/// counters say how much per-subtree DP work the batch skipped.
#[derive(Debug, Clone, Copy)]
pub struct MqoRecord {
    /// Whole-batch wall time in milliseconds.
    pub time_ms: f64,
    /// Plans generated over all queries.
    pub plans_created: u64,
    /// Final Pareto-set sizes summed over all queries.
    pub final_plans: u64,
    /// Subtree-frontier cache hits (whole table sets replayed).
    pub subtree_hits: u64,
    /// Subtree-frontier cache misses (= distinct subtree keys, when the
    /// cache is unbounded).
    pub subtree_misses: u64,
    /// Subtree-frontier cache evictions (bounded capacities only).
    pub subtree_evictions: u64,
}

/// Runs one batched workload through an [`OptimizerSession`] with the
/// shared-subplan cache enabled at the given capacity (`None` =
/// unbounded, `Some(0)` = pass-through) on top of the default
/// cost-lifting cache.
pub fn run_workload_mqo(
    kind: SpaceKind,
    spec: &WorkloadSpec,
    seed: u64,
    config: &OptimizerConfig,
    capacity: Option<usize>,
) -> MqoRecord {
    let wcfg = WorkloadConfig::uniform(
        GeneratorConfig::paper(spec.num_tables, spec.topology, spec.num_params),
        spec.batch,
        spec.overlap,
    );
    let workload = generate_workload(&wcfg, &mut StdRng::seed_from_u64(seed));
    let model = CloudCostModel::default();
    let metrics = model_num_metrics(&model);
    match kind {
        SpaceKind::Grid => {
            let space = GridSpace::for_unit_box(spec.num_params, config, metrics)
                .expect("valid grid configuration");
            run_batch_mqo(space, &model, config, &workload.queries, capacity)
        }
        SpaceKind::Pwl => {
            let space = PwlSpace::for_unit_box(spec.num_params, config, metrics)
                .expect("valid grid configuration");
            run_batch_mqo(space, &model, config, &workload.queries, capacity)
        }
    }
}

fn run_batch_mqo<S>(
    space: S,
    model: &CloudCostModel,
    config: &OptimizerConfig,
    queries: &[mpq_catalog::Query],
    capacity: Option<usize>,
) -> MqoRecord
where
    S: MpqSpace + Sync,
    S::Cost: Send + Sync,
    S::Region: Send + Sync,
{
    let session_cfg = SessionConfig::new(config.clone()).with_subtree_cache(capacity);
    let session = OptimizerSession::with_config(space, model, session_cfg);
    let start = Instant::now();
    let solutions = session.optimize_batch(queries);
    let time_ms = start.elapsed().as_secs_f64() * 1e3;
    let subtree = session.subtree_cache_stats();
    MqoRecord {
        time_ms,
        plans_created: solutions.iter().map(|s| s.stats.plans_created).sum(),
        final_plans: solutions
            .iter()
            .map(|s| s.stats.final_plan_count as u64)
            .sum(),
        subtree_hits: subtree.hits,
        subtree_misses: subtree.misses,
        subtree_evictions: subtree.evictions,
    }
}

/// Resolves the worker-thread count for seed sweeps: an explicit request
/// (e.g. a `--threads` CLI value) wins, then `RAYON_NUM_THREADS`, then the
/// machine's available parallelism.
pub fn sweep_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested.filter(|&n| n > 0) {
        return n;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Median of a float sample (empty samples yield NaN; NaN entries sort
/// last, so a sample with NaNs — e.g. latency percentiles of a chaos run
/// that quarantined every query — degrades instead of panicking).
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// One row of Figure 12: medians over `seeds` random queries.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Row {
    /// Number of tables joined.
    pub num_tables: usize,
    /// Median optimization time in milliseconds.
    pub time_ms: f64,
    /// Median number of created plans.
    pub plans_created: f64,
    /// Median number of solved LPs.
    pub lps_solved: f64,
    /// Median Pareto-plan-set size of the full query.
    pub final_plans: f64,
}

/// Runs the seed sweep for one configuration on `threads` worker threads
/// and returns the per-seed records in seed order.
pub fn sweep_records(
    num_tables: usize,
    topology: Topology,
    num_params: usize,
    seeds: usize,
    config: &OptimizerConfig,
    threads: usize,
) -> Vec<RunRecord> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("sweep thread pool");
    pool.install(|| {
        (0..seeds)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|s| run_once(num_tables, topology, num_params, s as u64, config))
            .collect()
    })
}

/// Per-site medians of the fast-path hit / LP-fallback counters across a
/// run-record sample.
pub fn breakdown_medians(records: &[RunRecord]) -> FastPathBreakdown {
    let mut out = FastPathBreakdown::default();
    for i in 0..FastPathSite::ALL.len() {
        let mut fast: Vec<f64> = records
            .iter()
            .map(|r| r.lp_breakdown.fast[i] as f64)
            .collect();
        let mut lp: Vec<f64> = records
            .iter()
            .map(|r| r.lp_breakdown.lp[i] as f64)
            .collect();
        out.fast[i] = median(&mut fast) as u64;
        out.lp[i] = median(&mut lp) as u64;
    }
    out
}

/// Serialises a [`FastPathBreakdown`] as a JSON object
/// (`{"site": {"fast": F, "lp": L}, ...}`).
pub fn breakdown_json(b: &FastPathBreakdown) -> String {
    let fields: Vec<String> = FastPathSite::ALL
        .iter()
        .map(|&site| {
            format!(
                "\"{}\": {{\"fast\": {}, \"lp\": {}}}",
                site.name(),
                b.fast[site as usize],
                b.lp[site as usize]
            )
        })
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// Per-metric medians of a run-record sample: `(time_ms, plans_created,
/// lps_solved, final_plans)`.
pub fn record_medians(records: &[RunRecord]) -> (f64, f64, f64, f64) {
    let mut time: Vec<f64> = records.iter().map(|r| r.time_ms).collect();
    let mut plans: Vec<f64> = records.iter().map(|r| r.plans_created as f64).collect();
    let mut lps: Vec<f64> = records.iter().map(|r| r.lps_solved as f64).collect();
    let mut fin: Vec<f64> = records.iter().map(|r| r.final_plans as f64).collect();
    (
        median(&mut time),
        median(&mut plans),
        median(&mut lps),
        median(&mut fin),
    )
}

/// Computes one Figure 12 row, running the seed sweep on `threads` worker
/// threads (each seed is an independent optimization).
pub fn fig12_row(
    num_tables: usize,
    topology: Topology,
    num_params: usize,
    seeds: usize,
    config: &OptimizerConfig,
    threads: usize,
) -> Fig12Row {
    let records = sweep_records(num_tables, topology, num_params, seeds, config, threads);
    let (time_ms, plans_created, lps_solved, final_plans) = record_medians(&records);
    Fig12Row {
        num_tables,
        time_ms,
        plans_created,
        lps_solved,
        final_plans,
    }
}

/// One measured configuration of the `BENCH_rrpa.json` baseline.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Space backend (`"grid"` / `"pwl"`).
    pub space: String,
    /// Workload topology (`"chain"` / `"star"`).
    pub workload: String,
    /// Number of tables joined.
    pub num_tables: usize,
    /// Number of parameters.
    pub num_params: usize,
    /// Worker threads used *inside* each optimization run.
    pub optimizer_threads: usize,
    /// Median optimization wall time (milliseconds) over the seeds.
    pub median_time_ms: f64,
    /// Median created plans.
    pub plans_created: f64,
    /// Median solved LPs.
    pub lps_solved: f64,
    /// Median final Pareto-plan-set size.
    pub final_plans: f64,
    /// Per-site medians of the fast-path hit / LP-fallback counters
    /// (schema v4: where the remaining LP tail lives).
    pub lp_breakdown: FastPathBreakdown,
    /// Number of random queries (seeds) measured.
    pub seeds: usize,
}

impl BaselineEntry {
    fn to_json(&self) -> String {
        format!(
            "    {{\"space\": \"{}\", \"workload\": \"{}\", \"num_tables\": {}, \
             \"num_params\": {}, \
             \"optimizer_threads\": {}, \"median_time_ms\": {:.3}, \
             \"plans_created\": {:.0}, \"lps_solved\": {:.0}, \"final_plans\": {:.0}, \
             \"lp_breakdown\": {}, \"seeds\": {}}}",
            self.space,
            self.workload,
            self.num_tables,
            self.num_params,
            self.optimizer_threads,
            self.median_time_ms,
            self.plans_created,
            self.lps_solved,
            self.final_plans,
            breakdown_json(&self.lp_breakdown),
            self.seeds
        )
    }
}

/// One measured batched-workload configuration of the schema-v3
/// `BENCH_rrpa.json`: medians over the seeds for a
/// `(space, workload, tables, params, batch, overlap)` cell, with the
/// uncached counterpart and the resulting cost-lifting speedup.
#[derive(Debug, Clone)]
pub struct BatchBaselineEntry {
    /// Space backend (`"grid"` / `"pwl"`).
    pub space: String,
    /// Workload topology (`"chain"` / `"star"`).
    pub workload: String,
    /// Tables per query.
    pub num_tables: usize,
    /// Parameters per query.
    pub num_params: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Table-overlap ratio of the workload generator.
    pub overlap: f64,
    /// Worker threads inside the session.
    pub optimizer_threads: usize,
    /// Median whole-batch wall time with the cost-lifting cache.
    pub median_time_ms: f64,
    /// Median whole-batch wall time without the cache.
    pub median_time_nocache_ms: f64,
    /// `median_time_nocache_ms / median_time_ms`.
    pub speedup: f64,
    /// Median cache hits per batch.
    pub cache_hits: f64,
    /// Median cache misses (distinct shapes) per batch.
    pub cache_misses: f64,
    /// Median summed created plans per batch (must match the uncached and
    /// the one-by-one runs).
    pub plans_created: f64,
    /// Median summed final Pareto-set sizes per batch.
    pub final_plans: f64,
    /// Median (over seeds) of the per-batch median per-query LP count
    /// (schema v4; exact — batch rows are measured single-threaded).
    pub lps_query_median: f64,
    /// Number of random workloads (seeds) measured.
    pub seeds: usize,
}

impl BatchBaselineEntry {
    fn to_json(&self) -> String {
        let hit_rate = if self.cache_hits + self.cache_misses > 0.0 {
            self.cache_hits / (self.cache_hits + self.cache_misses)
        } else {
            0.0
        };
        format!(
            "    {{\"space\": \"{}\", \"workload\": \"{}\", \"num_tables\": {}, \
             \"num_params\": {}, \"batch\": {}, \"overlap\": {}, \"optimizer_threads\": {}, \
             \"median_time_ms\": {:.3}, \"median_time_nocache_ms\": {:.3}, \
             \"speedup\": {:.3}, \"cache_hits\": {:.0}, \"cache_misses\": {:.0}, \
             \"cache_hit_rate\": {:.3}, \"plans_created\": {:.0}, \"final_plans\": {:.0}, \
             \"lps_query_median\": {:.0}, \"seeds\": {}}}",
            self.space,
            self.workload,
            self.num_tables,
            self.num_params,
            self.batch,
            self.overlap,
            self.optimizer_threads,
            self.median_time_ms,
            self.median_time_nocache_ms,
            self.speedup,
            self.cache_hits,
            self.cache_misses,
            hit_rate,
            self.plans_created,
            self.final_plans,
            self.lps_query_median,
            self.seeds
        )
    }
}

/// One measured shared-subplan configuration of the schema-v7
/// `BENCH_rrpa.json` (`mqo_entries`): medians over the seeds for a
/// `(space, workload, tables, params, batch, overlap, capacity)` cell,
/// with the lift-only cached counterpart (the pre-subtree batching
/// behaviour) and the resulting shared-subplan speedup.
#[derive(Debug, Clone)]
pub struct MqoBaselineEntry {
    /// Space backend (`"grid"` / `"pwl"`).
    pub space: String,
    /// Workload topology (`"chain"` / `"star"`).
    pub workload: String,
    /// Tables per query.
    pub num_tables: usize,
    /// Parameters per query.
    pub num_params: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Table-overlap ratio of the workload generator.
    pub overlap: f64,
    /// Subtree-frontier cache capacity (`None` = unbounded, `0` =
    /// pass-through).
    pub subtree_capacity: Option<usize>,
    /// Worker threads inside the session.
    pub optimizer_threads: usize,
    /// Median whole-batch wall time with the subtree cache (on top of
    /// the cost-lifting cache).
    pub median_time_ms: f64,
    /// Median whole-batch wall time with the cost-lifting cache only.
    pub median_time_lift_ms: f64,
    /// `median_time_lift_ms / median_time_ms`.
    pub speedup: f64,
    /// Median subtree-frontier cache hits per batch.
    pub subtree_hits: f64,
    /// Median subtree-frontier cache misses per batch.
    pub subtree_misses: f64,
    /// Median subtree-frontier cache evictions per batch.
    pub subtree_evictions: f64,
    /// Median summed created plans per batch (must match the lift-only
    /// and the one-by-one runs — memoization is pure).
    pub plans_created: f64,
    /// Median summed final Pareto-set sizes per batch.
    pub final_plans: f64,
    /// Number of random workloads (seeds) measured.
    pub seeds: usize,
}

impl MqoBaselineEntry {
    /// One `mqo_entries` row.
    pub fn to_json(&self) -> String {
        let hit_rate = if self.subtree_hits + self.subtree_misses > 0.0 {
            self.subtree_hits / (self.subtree_hits + self.subtree_misses)
        } else {
            0.0
        };
        let capacity = self
            .subtree_capacity
            .map_or("null".to_string(), |c| c.to_string());
        format!(
            "    {{\"space\": \"{}\", \"workload\": \"{}\", \"num_tables\": {}, \
             \"num_params\": {}, \"batch\": {}, \"overlap\": {}, \
             \"subtree_capacity\": {}, \"optimizer_threads\": {}, \
             \"median_time_ms\": {:.3}, \"median_time_lift_ms\": {:.3}, \
             \"speedup\": {:.3}, \"subtree_hits\": {:.0}, \"subtree_misses\": {:.0}, \
             \"subtree_evictions\": {:.0}, \"subtree_hit_rate\": {:.3}, \
             \"plans_created\": {:.0}, \"final_plans\": {:.0}, \"seeds\": {}}}",
            self.space,
            self.workload,
            self.num_tables,
            self.num_params,
            self.batch,
            self.overlap,
            capacity,
            self.optimizer_threads,
            self.median_time_ms,
            self.median_time_lift_ms,
            self.speedup,
            self.subtree_hits,
            self.subtree_misses,
            self.subtree_evictions,
            hit_rate,
            self.plans_created,
            self.final_plans,
            self.seeds
        )
    }
}

/// One ε-approximate vs exact comparison: the same random query optimized
/// twice, once at `OptimizerConfig::epsilon = ε` and once exactly.
#[derive(Debug, Clone, Copy)]
pub struct ApproxRecord {
    /// The ε-approximate run.
    pub approx: RunRecord,
    /// The exact (ε = 0) reference run.
    pub exact: RunRecord,
}

/// Runs one random query twice — at `ε` and exactly — through the given
/// space backend and asserts the whole-plan-discard contract (an
/// ε-approximate frontier can only shrink).
pub fn run_approx_once(
    kind: SpaceKind,
    num_tables: usize,
    topology: Topology,
    num_params: usize,
    seed: u64,
    config: &OptimizerConfig,
    epsilon: f64,
) -> ApproxRecord {
    let exact_cfg = OptimizerConfig {
        epsilon: 0.0,
        ..config.clone()
    };
    let approx_cfg = OptimizerConfig {
        epsilon,
        ..config.clone()
    };
    let exact = run_once_in(kind, num_tables, topology, num_params, seed, &exact_cfg);
    let approx = run_once_in(kind, num_tables, topology, num_params, seed, &approx_cfg);
    assert!(
        approx.final_plans <= exact.final_plans,
        "ε-discards can only shrink the frontier (approx {} vs exact {} at ε={epsilon})",
        approx.final_plans,
        exact.final_plans
    );
    ApproxRecord { approx, exact }
}

/// One measured ε-approximate configuration of the schema-v8
/// `BENCH_rrpa.json` (`approx_entries`): medians over the seeds at one
/// `(space, workload, tables, params, ε)` cell against the exact runs of
/// the same seeds — what the `(1+ε)` band buys in wall time, LP count and
/// frontier size.
#[derive(Debug, Clone)]
pub struct ApproxBaselineEntry {
    /// Space backend.
    pub space: String,
    /// Workload topology (`"chain"` / `"star"`).
    pub workload: String,
    /// Tables per query.
    pub num_tables: usize,
    /// Parameters per query.
    pub num_params: usize,
    /// The approximation factor (the run uses a per-level band of
    /// `(1+ε)^(1/num_tables)`).
    pub epsilon: f64,
    /// Worker threads inside each run.
    pub optimizer_threads: usize,
    /// Median ε-approximate wall time (milliseconds).
    pub median_time_ms: f64,
    /// Median exact wall time over the same seeds.
    pub median_time_exact_ms: f64,
    /// `median_time_exact_ms / median_time_ms`.
    pub speedup: f64,
    /// Median solved LPs of the ε runs.
    pub lps_solved: f64,
    /// Median solved LPs of the exact runs.
    pub lps_solved_exact: f64,
    /// `lps_solved_exact / lps_solved` (the LP-count reduction).
    pub lp_speedup: f64,
    /// Median created plans of the ε runs.
    pub plans_created: f64,
    /// Median created plans of the exact runs.
    pub plans_created_exact: f64,
    /// Median final frontier size of the ε runs.
    pub final_plans: f64,
    /// Median final frontier size of the exact runs.
    pub final_plans_exact: f64,
    /// `final_plans_exact / final_plans` (the frontier-size reduction;
    /// ≥ 1 by the whole-plan-discard contract).
    pub frontier_reduction: f64,
    /// Number of random queries (seeds) measured.
    pub seeds: usize,
}

impl ApproxBaselineEntry {
    /// Medians over a per-seed record sample for one configuration.
    pub fn from_records(
        space: SpaceKind,
        workload: &str,
        num_tables: usize,
        num_params: usize,
        epsilon: f64,
        records: &[ApproxRecord],
    ) -> Self {
        let med = |f: &dyn Fn(&ApproxRecord) -> f64| {
            let mut v: Vec<f64> = records.iter().map(f).collect();
            median(&mut v)
        };
        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 1.0 };
        let median_time_ms = med(&|r| r.approx.time_ms);
        let median_time_exact_ms = med(&|r| r.exact.time_ms);
        let lps_solved = med(&|r| r.approx.lps_solved as f64);
        let lps_solved_exact = med(&|r| r.exact.lps_solved as f64);
        let final_plans = med(&|r| r.approx.final_plans as f64);
        let final_plans_exact = med(&|r| r.exact.final_plans as f64);
        Self {
            space: space.name().to_string(),
            workload: workload.to_string(),
            num_tables,
            num_params,
            epsilon,
            optimizer_threads: 1,
            median_time_ms,
            median_time_exact_ms,
            speedup: ratio(median_time_exact_ms, median_time_ms),
            lps_solved,
            lps_solved_exact,
            lp_speedup: ratio(lps_solved_exact, lps_solved),
            plans_created: med(&|r| r.approx.plans_created as f64),
            plans_created_exact: med(&|r| r.exact.plans_created as f64),
            final_plans,
            final_plans_exact,
            frontier_reduction: ratio(final_plans_exact, final_plans),
            seeds: records.len(),
        }
    }

    /// One `approx_entries` row.
    pub fn to_json(&self) -> String {
        format!(
            "    {{\"space\": \"{}\", \"workload\": \"{}\", \"num_tables\": {}, \
             \"num_params\": {}, \"epsilon\": {}, \"optimizer_threads\": {}, \
             \"median_time_ms\": {:.3}, \"median_time_exact_ms\": {:.3}, \
             \"speedup\": {:.3}, \"lps_solved\": {:.0}, \"lps_solved_exact\": {:.0}, \
             \"lp_speedup\": {:.3}, \"plans_created\": {:.0}, \
             \"plans_created_exact\": {:.0}, \"final_plans\": {:.0}, \
             \"final_plans_exact\": {:.0}, \"frontier_reduction\": {:.3}, \
             \"seeds\": {}}}",
            self.space,
            self.workload,
            self.num_tables,
            self.num_params,
            self.epsilon,
            self.optimizer_threads,
            self.median_time_ms,
            self.median_time_exact_ms,
            self.speedup,
            self.lps_solved,
            self.lps_solved_exact,
            self.lp_speedup,
            self.plans_created,
            self.plans_created_exact,
            self.final_plans,
            self.final_plans_exact,
            self.frontier_reduction,
            self.seeds
        )
    }
}

/// One open-loop service-trace configuration: the per-query shape, the
/// arrival process, the batch policy and the shard layout.
#[derive(Debug, Clone, Copy)]
pub struct ServiceSpec {
    /// Tables per query.
    pub num_tables: usize,
    /// Join-graph topology.
    pub topology: Topology,
    /// Parameters per query.
    pub num_params: usize,
    /// Arrivals per trace.
    pub trace: usize,
    /// Table-overlap ratio of the trace's workload.
    pub overlap: f64,
    /// Shard (session) count.
    pub shards: usize,
    /// Batch size trigger.
    pub max_batch: usize,
    /// Batch deadline trigger, in microseconds of the service clock.
    pub max_wait_us: u64,
    /// Mean inter-arrival gap of the trace, in virtual microseconds.
    pub mean_gap_us: u64,
    /// Cost-lifting cache capacity per shard (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Shared-subplan cache: `None` = the session default (enabled,
    /// unbounded — the production behaviour since the default flip),
    /// `Some(cap)` = explicitly enabled with per-shard capacity `cap`
    /// (`None` = unbounded, `Some(0)` = pass-through).
    pub subtree: Option<Option<usize>>,
    /// Deadline-triggered ε-approximate serving: `Some(ε)` installs
    /// [`mpq_service::ApproxPolicy::deadline_only`] so every
    /// deadline-pressured batch runs at `ε` (stamped on its responses);
    /// `None` keeps every batch exact.
    pub approx_epsilon: Option<f64>,
}

/// Metrics of one service-trace run (grid backend, single-threaded
/// optimizer — the measurement rules of this repository).
#[derive(Debug, Clone, Copy)]
pub struct ServiceRecord {
    /// Wall time of the whole run (submit → last drain), milliseconds.
    pub time_ms: f64,
    /// Plans created, summed over all responses.
    pub plans_created: u64,
    /// Final Pareto-set sizes, summed over all responses.
    pub final_plans: u64,
    /// LPs solved (summed per-batch deltas).
    pub lps_solved: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Size-triggered batches.
    pub size_triggered: u64,
    /// Deadline-triggered batches.
    pub deadline_triggered: u64,
    /// Drain-flushed batches.
    pub drain_triggered: u64,
    /// Cache hits, summed over shards.
    pub cache_hits: u64,
    /// Cache misses, summed over shards.
    pub cache_misses: u64,
    /// Cache evictions, summed over shards.
    pub evictions: u64,
    /// Median **per-query** LP count across the trace's responses
    /// (`OptStats::lps_solved_query` — the per-run atomic, exact at
    /// every thread count).
    pub lps_query_median: f64,
    /// Median submit→completion latency (service-clock milliseconds).
    pub p50_ms: f64,
    /// 95th-percentile latency (service-clock milliseconds).
    pub p95_ms: f64,
    /// Subtree-frontier cache hits, summed over shards (zero when the
    /// shared-subplan cache is disabled).
    pub subtree_hits: u64,
    /// Subtree-frontier cache misses, summed over shards.
    pub subtree_misses: u64,
    /// Subtree-frontier cache evictions, summed over shards.
    pub subtree_evictions: u64,
    /// Responses served ε-approximately (zero without an
    /// [`mpq_service::ApproxPolicy`]).
    pub approx_served: u64,
    /// Batches the approximation policy downgraded to ε.
    pub approx_batches: u64,
}

/// Runs one open-loop arrival trace through the optimizer service (grid
/// backend): the trace's virtual arrival times drive a **virtual service
/// clock** — stepped to each arrival at submit, exactly the replayable
/// no-wall-clock regime the trace generator promises — while `time_ms`
/// measures real wall time of the whole run.
pub fn run_service_trace(spec: &ServiceSpec, seed: u64, config: &OptimizerConfig) -> ServiceRecord {
    use mpq_catalog::generator::{generate_trace, TraceConfig};
    use mpq_core::session::{SessionConfig, ShardedSession};
    use mpq_service::{serve, ApproxPolicy, BatchPolicy, ServiceConfig, VirtualClock};
    use std::time::Duration;

    let trace_cfg = TraceConfig {
        workload: WorkloadConfig::uniform(
            GeneratorConfig::paper(spec.num_tables, spec.topology, spec.num_params),
            spec.trace,
            spec.overlap,
        ),
        mean_gap: spec.mean_gap_us as f64 * 1e-6,
    };
    let trace = generate_trace(&trace_cfg, &mut StdRng::seed_from_u64(seed));
    let model = CloudCostModel::default();
    let metrics = model_num_metrics(&model);
    let mut session_cfg = SessionConfig::new(config.clone());
    session_cfg.cache_capacity = spec.capacity;
    if let Some(subtree_capacity) = spec.subtree {
        session_cfg = session_cfg.with_subtree_cache(subtree_capacity);
    }
    let sessions = ShardedSession::build(spec.shards, &model, &session_cfg, || {
        GridSpace::for_unit_box(spec.num_params, config, metrics).expect("valid grid configuration")
    });
    let vclock = VirtualClock::new();
    let mut service_cfg = ServiceConfig::new(BatchPolicy::new(
        spec.max_batch,
        Duration::from_micros(spec.max_wait_us),
    ))
    .with_clock(vclock.clock());
    if let Some(epsilon) = spec.approx_epsilon {
        service_cfg = service_cfg.with_approx(ApproxPolicy::deadline_only(epsilon));
    }
    let start = Instant::now();
    let (tickets, stats) = serve(&sessions, service_cfg, |handle| {
        trace
            .queries
            .iter()
            .zip(&trace.arrivals)
            .map(|(q, &at)| {
                vclock.advance_to_secs(at);
                handle.submit(q.clone())
            })
            .collect::<Vec<_>>()
    });
    let mut plans_created = 0u64;
    let mut final_plans = 0u64;
    let mut lps_query: Vec<f64> = Vec::new();
    for ticket in tickets {
        let solution = ticket.wait().expect_ok();
        plans_created += solution.stats.plans_created;
        final_plans += solution.stats.final_plan_count as u64;
        lps_query.push(solution.stats.lps_solved_query as f64);
    }
    let time_ms = start.elapsed().as_secs_f64() * 1e3;
    let cache: Vec<_> = stats.per_shard.iter().map(|s| s.cache).collect();
    let subtree: Vec<_> = stats.per_shard.iter().map(|s| s.subtree).collect();
    ServiceRecord {
        time_ms,
        plans_created,
        final_plans,
        lps_solved: stats.lps_solved,
        batches: stats.batches,
        size_triggered: stats.size_triggered,
        deadline_triggered: stats.deadline_triggered,
        drain_triggered: stats.drain_triggered,
        cache_hits: cache.iter().map(|c| c.hits).sum(),
        cache_misses: cache.iter().map(|c| c.misses).sum(),
        evictions: cache.iter().map(|c| c.evictions).sum(),
        lps_query_median: median(&mut lps_query),
        p50_ms: stats.latency_p50 * 1e3,
        p95_ms: stats.latency_p95 * 1e3,
        subtree_hits: subtree.iter().map(|c| c.hits).sum(),
        subtree_misses: subtree.iter().map(|c| c.misses).sum(),
        subtree_evictions: subtree.iter().map(|c| c.evictions).sum(),
        approx_served: stats.approx_served,
        approx_batches: stats.approx_batches,
    }
}

/// Salt decorrelating the fault plan's random stream from the trace's
/// (same seed, independent draws) — shared with the service chaos tests.
pub const FAULT_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Metrics of one fault-injected ("chaos") service-trace run: the
/// fault-free metrics that still apply, plus quarantine accounting.
/// Latency percentiles cover **healthy** completions only (the service
/// excludes quarantined requests from its latency ring).
#[derive(Debug, Clone, Copy)]
pub struct ChaosRecord {
    /// Wall time of the whole run (submit → last drain), milliseconds.
    pub time_ms: f64,
    /// Healthy queries answered `Ok`.
    pub healthy: u64,
    /// Poison queries quarantined (`Panicked`).
    pub quarantined: u64,
    /// Worker panics caught across all shards (bisection attempts).
    pub restarts: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Plans created, summed over healthy responses.
    pub healthy_plans_created: u64,
    /// Final Pareto-set sizes, summed over healthy responses.
    pub healthy_final_plans: u64,
    /// LPs solved (per-batch deltas, including work burned by panicked
    /// bisection attempts).
    pub lps_solved: u64,
    /// Median healthy-query latency (service-clock milliseconds).
    pub p50_ms: f64,
    /// 95th-percentile healthy-query latency (service-clock ms).
    pub p95_ms: f64,
}

/// Runs one open-loop arrival trace through the service under a seeded
/// fault plan that poisons ~`fault_rate` of the trace's queries
/// (`FaultConfig::poison_only`), and **asserts the robustness contract**
/// while measuring: every poisoned query resolves `Panicked`, every
/// healthy query resolves `Ok` with plans/counters bit-identical to a
/// plain one-by-one session, and the outcome counters conserve. A
/// violated contract panics — this runner doubles as the chaos smoke
/// check in CI.
pub fn run_chaos_trace(
    spec: &ServiceSpec,
    fault_rate: f64,
    seed: u64,
    config: &OptimizerConfig,
) -> ChaosRecord {
    use mpq_catalog::fault::{silence_injected_panics, FaultConfig, FaultPlan};
    use mpq_catalog::generator::{generate_trace, TraceConfig};
    use mpq_core::session::{SessionConfig, ShardedSession};
    use mpq_service::{serve, ApproxPolicy, BatchPolicy, OutcomeKind, ServiceConfig, VirtualClock};
    use std::sync::Arc;
    use std::time::Duration;

    silence_injected_panics();
    let trace_cfg = TraceConfig {
        workload: WorkloadConfig::uniform(
            GeneratorConfig::paper(spec.num_tables, spec.topology, spec.num_params),
            spec.trace,
            spec.overlap,
        ),
        mean_gap: spec.mean_gap_us as f64 * 1e-6,
    };
    let trace = generate_trace(&trace_cfg, &mut StdRng::seed_from_u64(seed));
    let plan = Arc::new(FaultPlan::generate(
        &trace,
        &FaultConfig::poison_only(fault_rate),
        &mut StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
    ));
    let poisoned: Vec<bool> = trace.queries.iter().map(|q| plan.is_poisoned(q)).collect();
    let model = CloudCostModel::default();
    let metrics = model_num_metrics(&model);
    let mut session_cfg = SessionConfig::new(config.clone());
    session_cfg.cache_capacity = spec.capacity;
    if let Some(subtree_capacity) = spec.subtree {
        session_cfg = session_cfg.with_subtree_cache(subtree_capacity);
    }
    session_cfg.fault_hook = Some(plan.hook(|_| {}));
    let sessions = ShardedSession::build(spec.shards, &model, &session_cfg, || {
        GridSpace::for_unit_box(spec.num_params, config, metrics).expect("valid grid configuration")
    });
    let vclock = VirtualClock::new();
    let mut service_cfg = ServiceConfig::new(BatchPolicy::new(
        spec.max_batch,
        Duration::from_micros(spec.max_wait_us),
    ))
    .with_clock(vclock.clock());
    if let Some(epsilon) = spec.approx_epsilon {
        service_cfg = service_cfg.with_approx(ApproxPolicy::deadline_only(epsilon));
    }
    let start = Instant::now();
    let (tickets, stats) = serve(&sessions, service_cfg, |handle| {
        trace
            .queries
            .iter()
            .zip(&trace.arrivals)
            .map(|(q, &at)| {
                vclock.advance_to_secs(at);
                handle.submit(q.clone())
            })
            .collect::<Vec<_>>()
    });
    let time_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut healthy_plans_created = 0u64;
    let mut healthy_final_plans = 0u64;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let resp = ticket.wait();
        if poisoned[i] {
            assert_eq!(
                resp.kind(),
                OutcomeKind::Panicked,
                "chaos: poisoned query {i} must be quarantined"
            );
            continue;
        }
        let served_epsilon = resp.served_epsilon;
        let solution = resp
            .outcome
            .ok()
            .expect("chaos: healthy query must complete");
        let space = GridSpace::for_unit_box(spec.num_params, config, metrics).expect("grid space");
        let reference = optimize(&trace.queries[i], &model, &space, config);
        if let Some(epsilon) = served_epsilon {
            // ε-served answers (their batch was deadline-downgraded, and
            // bisection preserves the batch's ε): the whole-plan discard
            // can only shrink the frontier, never grow it.
            assert!(
                spec.approx_epsilon == Some(epsilon),
                "chaos: served ε must be the policy's ε"
            );
            assert!(
                solution.stats.final_plan_count <= reference.stats.final_plan_count,
                "chaos: ε-served query {i} kept more plans than exact"
            );
        } else {
            // Healthy-query determinism under fire: bit-identical to the
            // same query alone on a fresh space.
            assert_eq!(
                (
                    solution.stats.plans_created,
                    solution.stats.plans_pruned,
                    solution.stats.final_plan_count
                ),
                (
                    reference.stats.plans_created,
                    reference.stats.plans_pruned,
                    reference.stats.final_plan_count
                ),
                "chaos: healthy query {i} diverged from a one-by-one session"
            );
        }
        healthy_plans_created += solution.stats.plans_created;
        healthy_final_plans += solution.stats.final_plan_count as u64;
    }
    let n_poisoned = poisoned.iter().filter(|&&p| p).count() as u64;
    assert_eq!(
        stats.quarantined, n_poisoned,
        "chaos: quarantine accounting"
    );
    assert_eq!(
        stats.completed + stats.quarantined,
        spec.trace as u64,
        "chaos: every query resolves exactly once"
    );
    // The conservation identity, unchanged by approximate serving:
    // ε-served answers are completions like any other.
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected + stats.timed_out + stats.quarantined,
        "chaos: outcome conservation"
    );
    assert!(
        stats.approx_served <= stats.completed,
        "chaos: ε-served answers are a subset of completions"
    );
    if spec.approx_epsilon.is_none() {
        assert_eq!(
            stats.approx_served, 0,
            "chaos: no approximation policy, no ε-served answers"
        );
    }
    let restarts: u64 = stats.per_shard.iter().map(|s| s.restarts).sum();
    assert!(
        restarts >= stats.quarantined,
        "chaos: each quarantined poison costs at least its leaf restart"
    );
    ChaosRecord {
        time_ms,
        healthy: stats.completed,
        quarantined: stats.quarantined,
        restarts,
        batches: stats.batches,
        healthy_plans_created,
        healthy_final_plans,
        lps_solved: stats.lps_solved,
        p50_ms: stats.latency_p50 * 1e3,
        p95_ms: stats.latency_p95 * 1e3,
    }
}

/// One measured chaos configuration of the schema-v6 `BENCH_rrpa.json`
/// (`chaos_entries`): medians over the seeds at one fault rate ×
/// overlap × shard count.
#[derive(Debug, Clone)]
pub struct ChaosBaselineEntry {
    /// Space backend (the chaos rows measure `"grid"`).
    pub space: String,
    /// Workload topology.
    pub workload: String,
    /// Tables per query.
    pub num_tables: usize,
    /// Parameters per query.
    pub num_params: usize,
    /// Arrivals per trace.
    pub trace: usize,
    /// Table-overlap ratio.
    pub overlap: f64,
    /// Shard count.
    pub shards: usize,
    /// Batch size trigger.
    pub max_batch: usize,
    /// Batch deadline trigger (µs, service clock).
    pub max_wait_us: u64,
    /// Mean inter-arrival gap (virtual µs).
    pub mean_gap_us: u64,
    /// Poison probability per distinct trace query.
    pub fault_rate: f64,
    /// Median wall time of the whole run.
    pub median_time_ms: f64,
    /// Median healthy completions.
    pub healthy: f64,
    /// Median quarantined poisons.
    pub quarantined: f64,
    /// Median caught worker panics (bisection attempts).
    pub restarts: f64,
    /// Median dispatched batches.
    pub batches: f64,
    /// Median summed healthy created plans (equal to the one-by-one
    /// runs of the healthy queries — asserted at measure time).
    pub healthy_plans_created: f64,
    /// Median summed healthy final Pareto-set sizes.
    pub healthy_final_plans: f64,
    /// Median summed per-batch LP deltas (includes burned attempts).
    pub lps_solved: f64,
    /// Median healthy-query p50 latency (service-clock ms).
    pub p50_ms: f64,
    /// Median healthy-query p95 latency (service-clock ms).
    pub p95_ms: f64,
    /// Number of random traces (seeds) measured.
    pub seeds: usize,
}

impl ChaosBaselineEntry {
    /// Medians over a per-seed record sample for one configuration.
    pub fn from_records(
        spec: &ServiceSpec,
        workload: &str,
        fault_rate: f64,
        records: &[ChaosRecord],
    ) -> Self {
        let med = |f: &dyn Fn(&ChaosRecord) -> f64| {
            let mut v: Vec<f64> = records.iter().map(f).collect();
            median(&mut v)
        };
        Self {
            space: "grid".to_string(),
            workload: workload.to_string(),
            num_tables: spec.num_tables,
            num_params: spec.num_params,
            trace: spec.trace,
            overlap: spec.overlap,
            shards: spec.shards,
            max_batch: spec.max_batch,
            max_wait_us: spec.max_wait_us,
            mean_gap_us: spec.mean_gap_us,
            fault_rate,
            median_time_ms: med(&|r| r.time_ms),
            healthy: med(&|r| r.healthy as f64),
            quarantined: med(&|r| r.quarantined as f64),
            restarts: med(&|r| r.restarts as f64),
            batches: med(&|r| r.batches as f64),
            healthy_plans_created: med(&|r| r.healthy_plans_created as f64),
            healthy_final_plans: med(&|r| r.healthy_final_plans as f64),
            lps_solved: med(&|r| r.lps_solved as f64),
            p50_ms: med(&|r| r.p50_ms),
            p95_ms: med(&|r| r.p95_ms),
            seeds: records.len(),
        }
    }

    /// One `chaos_entries` row.
    pub fn to_json(&self) -> String {
        format!(
            "    {{\"space\": \"{}\", \"workload\": \"{}\", \"num_tables\": {}, \
             \"num_params\": {}, \"trace\": {}, \"overlap\": {}, \"shards\": {}, \
             \"max_batch\": {}, \"max_wait_us\": {}, \"mean_gap_us\": {}, \
             \"fault_rate\": {}, \"median_time_ms\": {:.3}, \"healthy\": {:.0}, \
             \"quarantined\": {:.0}, \"restarts\": {:.0}, \"batches\": {:.0}, \
             \"healthy_plans_created\": {:.0}, \"healthy_final_plans\": {:.0}, \
             \"lps_solved\": {:.0}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
             \"seeds\": {}}}",
            self.space,
            self.workload,
            self.num_tables,
            self.num_params,
            self.trace,
            self.overlap,
            self.shards,
            self.max_batch,
            self.max_wait_us,
            self.mean_gap_us,
            self.fault_rate,
            self.median_time_ms,
            self.healthy,
            self.quarantined,
            self.restarts,
            self.batches,
            self.healthy_plans_created,
            self.healthy_final_plans,
            self.lps_solved,
            self.p50_ms,
            self.p95_ms,
            self.seeds
        )
    }
}

/// One measured service-trace configuration of the schema-v5
/// `BENCH_rrpa.json` (`service_entries`): medians over the seeds.
#[derive(Debug, Clone)]
pub struct ServiceBaselineEntry {
    /// Space backend (the service rows measure `"grid"`).
    pub space: String,
    /// Workload topology.
    pub workload: String,
    /// Tables per query.
    pub num_tables: usize,
    /// Parameters per query.
    pub num_params: usize,
    /// Arrivals per trace.
    pub trace: usize,
    /// Table-overlap ratio.
    pub overlap: f64,
    /// Shard count.
    pub shards: usize,
    /// Batch size trigger.
    pub max_batch: usize,
    /// Batch deadline trigger (µs, service clock).
    pub max_wait_us: u64,
    /// Mean inter-arrival gap (virtual µs).
    pub mean_gap_us: u64,
    /// Per-shard cache capacity (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Deadline-triggered approximation factor (`None` = exact serving).
    pub approx_epsilon: Option<f64>,
    /// Median wall time of the whole run.
    pub median_time_ms: f64,
    /// Median dispatched batches.
    pub batches: f64,
    /// Median size-triggered batches.
    pub size_triggered: f64,
    /// Median deadline-triggered batches.
    pub deadline_triggered: f64,
    /// Median drain-flushed batches.
    pub drain_triggered: f64,
    /// Median cache hits (summed over shards).
    pub cache_hits: f64,
    /// Median cache misses.
    pub cache_misses: f64,
    /// Median cache evictions.
    pub evictions: f64,
    /// Median summed created plans (must equal the one-by-one runs).
    pub plans_created: f64,
    /// Median summed final Pareto-set sizes.
    pub final_plans: f64,
    /// Median summed per-batch LP deltas.
    pub lps_solved: f64,
    /// Median of the per-trace median **per-query** LP count
    /// (`OptStats::lps_solved_query` — exact per-run attribution).
    pub lps_query_median: f64,
    /// Median p50 latency (service-clock ms).
    pub p50_ms: f64,
    /// Median p95 latency (service-clock ms).
    pub p95_ms: f64,
    /// Median ε-served responses (zero on exact rows).
    pub approx_served: f64,
    /// Median ε-downgraded batches.
    pub approx_batches: f64,
    /// Number of random traces (seeds) measured.
    pub seeds: usize,
}

impl ServiceBaselineEntry {
    /// Medians over a per-seed record sample for one configuration.
    pub fn from_records(spec: &ServiceSpec, workload: &str, records: &[ServiceRecord]) -> Self {
        let med = |f: &dyn Fn(&ServiceRecord) -> f64| {
            let mut v: Vec<f64> = records.iter().map(f).collect();
            median(&mut v)
        };
        Self {
            space: "grid".to_string(),
            workload: workload.to_string(),
            num_tables: spec.num_tables,
            num_params: spec.num_params,
            trace: spec.trace,
            overlap: spec.overlap,
            shards: spec.shards,
            max_batch: spec.max_batch,
            max_wait_us: spec.max_wait_us,
            mean_gap_us: spec.mean_gap_us,
            capacity: spec.capacity,
            approx_epsilon: spec.approx_epsilon,
            median_time_ms: med(&|r| r.time_ms),
            batches: med(&|r| r.batches as f64),
            size_triggered: med(&|r| r.size_triggered as f64),
            deadline_triggered: med(&|r| r.deadline_triggered as f64),
            drain_triggered: med(&|r| r.drain_triggered as f64),
            cache_hits: med(&|r| r.cache_hits as f64),
            cache_misses: med(&|r| r.cache_misses as f64),
            evictions: med(&|r| r.evictions as f64),
            plans_created: med(&|r| r.plans_created as f64),
            final_plans: med(&|r| r.final_plans as f64),
            lps_solved: med(&|r| r.lps_solved as f64),
            lps_query_median: med(&|r| r.lps_query_median),
            p50_ms: med(&|r| r.p50_ms),
            p95_ms: med(&|r| r.p95_ms),
            approx_served: med(&|r| r.approx_served as f64),
            approx_batches: med(&|r| r.approx_batches as f64),
            seeds: records.len(),
        }
    }

    /// One `service_entries` row.
    pub fn to_json(&self) -> String {
        let capacity = self.capacity.map_or("null".to_string(), |c| c.to_string());
        let approx_epsilon = self
            .approx_epsilon
            .map_or("null".to_string(), |e| e.to_string());
        format!(
            "    {{\"space\": \"{}\", \"workload\": \"{}\", \"num_tables\": {}, \
             \"num_params\": {}, \"trace\": {}, \"overlap\": {}, \"shards\": {}, \
             \"max_batch\": {}, \"max_wait_us\": {}, \"mean_gap_us\": {}, \
             \"capacity\": {}, \"approx_epsilon\": {}, \"median_time_ms\": {:.3}, \
             \"batches\": {:.0}, \
             \"size_triggered\": {:.0}, \"deadline_triggered\": {:.0}, \
             \"drain_triggered\": {:.0}, \"cache_hits\": {:.0}, \"cache_misses\": {:.0}, \
             \"evictions\": {:.0}, \"plans_created\": {:.0}, \"final_plans\": {:.0}, \
             \"lps_solved\": {:.0}, \"lps_query_median\": {:.0}, \"p50_ms\": {:.4}, \
             \"p95_ms\": {:.4}, \"approx_served\": {:.0}, \"approx_batches\": {:.0}, \
             \"seeds\": {}}}",
            self.space,
            self.workload,
            self.num_tables,
            self.num_params,
            self.trace,
            self.overlap,
            self.shards,
            self.max_batch,
            self.max_wait_us,
            self.mean_gap_us,
            capacity,
            approx_epsilon,
            self.median_time_ms,
            self.batches,
            self.size_triggered,
            self.deadline_triggered,
            self.drain_triggered,
            self.cache_hits,
            self.cache_misses,
            self.evictions,
            self.plans_created,
            self.final_plans,
            self.lps_solved,
            self.lps_query_median,
            self.p50_ms,
            self.p95_ms,
            self.approx_served,
            self.approx_batches,
            self.seeds
        )
    }
}

/// The schema version every baseline writer in this crate stamps on
/// `BENCH_rrpa.json`. Bump it when a section's shape changes; the merge
/// paths refuse to splice into a file stamped with a *newer* version
/// than the binary knows (see [`baseline_schema_version`]), so an old
/// binary can never silently downgrade a baseline.
pub const BENCH_SCHEMA_VERSION: u32 = 10;

/// Reads the top-level `"schema_version"` of a baseline file's text
/// (`None` when the key is absent or carries no digits).
pub fn baseline_schema_version(text: &str) -> Option<u32> {
    const KEY: &str = "\"schema_version\": ";
    let start = text.find(KEY)? + KEY.len();
    let digits: String = text[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Rewrites the top-level schema number to [`BENCH_SCHEMA_VERSION`] in
/// place (the spliced file now carries current-schema sections).
pub fn bump_schema(out: &mut String) {
    const KEY: &str = "\"schema_version\": ";
    if let Some(pos) = out.find(KEY) {
        let start = pos + KEY.len();
        let digits = out[start..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .count();
        if digits > 0 {
            out.replace_range(start..start + digits, &BENCH_SCHEMA_VERSION.to_string());
        }
    }
}

/// One networked-fabric trace configuration: the per-query shape, the
/// shard layout, and the (deterministic) network fault mix driven
/// through the in-process wire (`ChaosConn` over `InProcConn` — the
/// byte-exact transport the TCP/unix servers also speak).
#[derive(Debug, Clone, Copy)]
pub struct NetSpec {
    /// Tables per query.
    pub num_tables: usize,
    /// Join-graph topology.
    pub topology: Topology,
    /// Parameters per query.
    pub num_params: usize,
    /// Arrivals per trace.
    pub trace: usize,
    /// Table-overlap ratio of the trace's workload.
    pub overlap: f64,
    /// Shard (server) count.
    pub shards: usize,
    /// Transient fault kind injected on first attempts (`None` = clean
    /// wire).
    pub fault_kind: Option<mpq_catalog::fault::NetFaultKind>,
    /// Probability that a distinct trace query is marked for the fault.
    pub fault_rate: f64,
    /// Mean inter-arrival gap of the trace, in virtual microseconds.
    pub mean_gap_us: u64,
}

/// Metrics of one networked trace run (grid backend, single-threaded
/// optimizer, virtual clock — the measurement rules of this repository).
#[derive(Debug, Clone, Copy)]
pub struct NetRecord {
    /// Wall time of the whole run, milliseconds.
    pub time_ms: f64,
    /// Queries answered healthy (with transient faults: all of them).
    pub completed: u64,
    /// Attempts beyond the first, summed over the trace.
    pub retries: u64,
    /// Connection re-dials after an established stream failed.
    pub reconnects: u64,
    /// Request frames lost in flight (router-observed).
    pub dropped: u64,
    /// Faults the injector actually fired (all kinds).
    pub faults_injected: u64,
    /// Server-side idempotency-cache replays.
    pub dedup_hits: u64,
    /// Request frames the servers answered.
    pub handled: u64,
    /// Plans created, summed over all healthy answers.
    pub plans_created: u64,
    /// Final Pareto-set sizes, summed over all healthy answers.
    pub final_plans: u64,
    /// Median submit→answer latency (virtual-clock milliseconds).
    pub p50_ms: f64,
    /// 95th-percentile latency (virtual-clock milliseconds).
    pub p95_ms: f64,
}

/// Runs one arrival trace through the sharded network fabric — affinity
/// router, retry policy, idempotent shard servers — under a seeded
/// transient-fault plan and the service's virtual clock, and **asserts
/// the networked determinism contract** while measuring: every query
/// resolves exactly once, every answer (counters *and* probe frontiers)
/// is bit-identical to a plain in-process optimization, the stats
/// conservation identity holds, and a clean wire (`fault_rate` 0) shows
/// zero transport effort. A violated contract panics — this runner
/// doubles as the network smoke check in CI.
pub fn run_net_trace(spec: &NetSpec, seed: u64, config: &OptimizerConfig) -> NetRecord {
    use mpq_catalog::fault::{NetFaultConfig, NetFaultPlan};
    use mpq_catalog::generator::{generate_trace, TraceConfig};
    use mpq_core::session::{query_affinity, SessionConfig, ShardedSession};
    use mpq_net::chaos::{ChaosConn, InProcConn};
    use mpq_net::router::{NetTime, RetryPolicy, ShardRouter};
    use mpq_net::server::ShardServerCore;
    use mpq_net::wire::PlanSummary;
    use mpq_service::{SubmittedQuery, VirtualClock};
    use std::sync::Arc;

    let trace_cfg = TraceConfig {
        workload: WorkloadConfig::uniform(
            GeneratorConfig::paper(spec.num_tables, spec.topology, spec.num_params),
            spec.trace,
            spec.overlap,
        ),
        mean_gap: spec.mean_gap_us as f64 * 1e-6,
    };
    let trace = generate_trace(&trace_cfg, &mut StdRng::seed_from_u64(seed));
    let model = CloudCostModel::default();
    let metrics = model_num_metrics(&model);
    // Diagonal frontier probes: answers are compared per probe point, so
    // any dimension works with the same five stations.
    let probes: Vec<Vec<f64>> = [0.0, 0.15, 0.5, 0.85, 1.0]
        .iter()
        .map(|&v| vec![v; spec.num_params])
        .collect();

    // In-process reference: every query on a fresh space.
    let reference: Vec<PlanSummary> = trace
        .queries
        .iter()
        .map(|q| {
            let space = GridSpace::for_unit_box(spec.num_params, config, metrics)
                .expect("valid grid configuration");
            let sol = optimize(q, &model, &space, config);
            PlanSummary::of(&space, &sol, &probes)
        })
        .collect();

    let plan = Arc::new(match spec.fault_kind {
        Some(kind) => NetFaultPlan::generate(
            &trace,
            &NetFaultConfig::only(kind, spec.fault_rate),
            &mut StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
        ),
        None => NetFaultPlan::new(),
    });

    // Uncached server sessions: the net rows isolate the transport layer,
    // so each query must optimize exactly as the fresh-space reference.
    let mut session_cfg = SessionConfig::new(config.clone()).without_subtree_cache();
    session_cfg.cached = false;
    let sessions = ShardedSession::build(spec.shards, &model, &session_cfg, || {
        GridSpace::for_unit_box(spec.num_params, config, metrics).expect("valid grid configuration")
    });
    let cores: Vec<_> = (0..spec.shards)
        .map(|i| ShardServerCore::new(sessions.shard(i), i as u32, probes.clone()))
        .collect();
    let vclock = VirtualClock::new();
    let time = NetTime::virtual_time(&vclock);
    let conns: Vec<_> = cores
        .iter()
        .map(|core| ChaosConn::new(InProcConn::new(core), Arc::clone(&plan), time.clone()))
        .collect();
    let mut router = ShardRouter::new(
        conns,
        |q| query_affinity(q, &model),
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        },
        time.clone(),
    );

    let start = Instant::now();
    let responses: Vec<_> = trace
        .queries
        .iter()
        .zip(&trace.arrivals)
        .map(|(q, &at)| {
            vclock.advance_to_secs(at);
            router.submit(SubmittedQuery {
                query: q.clone(),
                deadline: None,
            })
        })
        .collect();
    let time_ms = start.elapsed().as_secs_f64() * 1e3;

    // The networked determinism contract, asserted at measure time.
    let stats = router.stats();
    assert_eq!(
        stats.submitted, spec.trace as u64,
        "net: every query submitted exactly once"
    );
    assert_eq!(
        stats.completed, spec.trace as u64,
        "net: transient faults must recover to healthy answers"
    );
    assert!(stats.conserves(), "net: outcome conservation");
    let mut plans_created = 0u64;
    let mut final_plans = 0u64;
    for (i, (resp, query)) in responses.iter().zip(&trace.queries).enumerate() {
        assert_eq!(
            resp.shard,
            sessions.shard_of(query),
            "net: query {i} routed off its affinity shard"
        );
        let summary = resp
            .outcome
            .ok()
            .expect("net: transient faults must leave every answer healthy");
        assert_eq!(
            summary, &reference[i],
            "net: query {i} diverged from the in-process reference"
        );
        plans_created += summary.plans_created;
        final_plans += summary.final_plan_count;
    }
    let faults_injected: u64 = (0..spec.shards)
        .map(|i| router.conn(i).counters().total())
        .sum();
    if spec.fault_kind.is_none() || spec.fault_rate == 0.0 {
        assert_eq!(
            (
                stats.retries,
                stats.reconnects,
                stats.dropped,
                faults_injected
            ),
            (0, 0, 0, 0),
            "net: a clean wire shows zero transport effort"
        );
    }
    let (dedup_hits, handled) = cores.iter().fold((0u64, 0u64), |(d, h), core| {
        let c = core.counters();
        (d + c.dedup_hits, h + c.handled)
    });

    NetRecord {
        time_ms,
        completed: stats.completed,
        retries: stats.retries,
        reconnects: stats.reconnects,
        dropped: stats.dropped,
        faults_injected,
        dedup_hits,
        handled,
        plans_created,
        final_plans,
        p50_ms: stats.latency_p50 * 1e3,
        p95_ms: stats.latency_p95 * 1e3,
    }
}

/// One measured networked-fabric configuration of the schema-v9
/// `BENCH_rrpa.json` (`net_entries`): medians over the seeds at one
/// fault kind × rate × overlap × shard count. Healthy answers are
/// asserted bit-identical to in-process runs at measure time
/// ([`run_net_trace`] panics on any contract violation), so these rows
/// track the *cost* of the wire — retries, replays, latency — never its
/// correctness.
#[derive(Debug, Clone)]
pub struct NetBaselineEntry {
    /// Space backend (the net rows measure `"grid"`).
    pub space: String,
    /// Workload topology.
    pub workload: String,
    /// Tables per query.
    pub num_tables: usize,
    /// Parameters per query.
    pub num_params: usize,
    /// Arrivals per trace.
    pub trace: usize,
    /// Table-overlap ratio.
    pub overlap: f64,
    /// Shard count.
    pub shards: usize,
    /// Fault kind name (`"none"` for the clean-wire rows).
    pub fault_kind: String,
    /// Per-distinct-query fault probability.
    pub fault_rate: f64,
    /// Median wall time of the whole run.
    pub median_time_ms: f64,
    /// Median healthy completions (= trace length by contract).
    pub completed: f64,
    /// Median retries.
    pub retries: f64,
    /// Median reconnects.
    pub reconnects: f64,
    /// Median dropped frames.
    pub dropped: f64,
    /// Median injected faults.
    pub faults_injected: f64,
    /// Median server-side dedup replays.
    pub dedup_hits: f64,
    /// Median request frames handled by the servers.
    pub handled: f64,
    /// Median summed created plans (bit-identical to in-process runs).
    pub plans_created: f64,
    /// Median summed final Pareto-set sizes.
    pub final_plans: f64,
    /// Median p50 latency (virtual-clock ms).
    pub p50_ms: f64,
    /// Median p95 latency (virtual-clock ms).
    pub p95_ms: f64,
    /// Number of random traces (seeds) measured.
    pub seeds: usize,
}

impl NetBaselineEntry {
    /// Medians over a per-seed record sample for one configuration.
    pub fn from_records(spec: &NetSpec, workload: &str, records: &[NetRecord]) -> Self {
        let med = |f: &dyn Fn(&NetRecord) -> f64| {
            let mut v: Vec<f64> = records.iter().map(f).collect();
            median(&mut v)
        };
        Self {
            space: "grid".to_string(),
            workload: workload.to_string(),
            num_tables: spec.num_tables,
            num_params: spec.num_params,
            trace: spec.trace,
            overlap: spec.overlap,
            shards: spec.shards,
            fault_kind: spec
                .fault_kind
                .map_or("none".to_string(), |k| k.name().to_string()),
            fault_rate: spec.fault_rate,
            median_time_ms: med(&|r| r.time_ms),
            completed: med(&|r| r.completed as f64),
            retries: med(&|r| r.retries as f64),
            reconnects: med(&|r| r.reconnects as f64),
            dropped: med(&|r| r.dropped as f64),
            faults_injected: med(&|r| r.faults_injected as f64),
            dedup_hits: med(&|r| r.dedup_hits as f64),
            handled: med(&|r| r.handled as f64),
            plans_created: med(&|r| r.plans_created as f64),
            final_plans: med(&|r| r.final_plans as f64),
            p50_ms: med(&|r| r.p50_ms),
            p95_ms: med(&|r| r.p95_ms),
            seeds: records.len(),
        }
    }

    /// One `net_entries` row.
    pub fn to_json(&self) -> String {
        format!(
            "    {{\"space\": \"{}\", \"workload\": \"{}\", \"num_tables\": {}, \
             \"num_params\": {}, \"trace\": {}, \"overlap\": {}, \"shards\": {}, \
             \"fault_kind\": \"{}\", \"fault_rate\": {}, \"median_time_ms\": {:.3}, \
             \"completed\": {:.0}, \"retries\": {:.0}, \"reconnects\": {:.0}, \
             \"dropped\": {:.0}, \"faults_injected\": {:.0}, \"dedup_hits\": {:.0}, \
             \"handled\": {:.0}, \"plans_created\": {:.0}, \"final_plans\": {:.0}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"seeds\": {}}}",
            self.space,
            self.workload,
            self.num_tables,
            self.num_params,
            self.trace,
            self.overlap,
            self.shards,
            self.fault_kind,
            self.fault_rate,
            self.median_time_ms,
            self.completed,
            self.retries,
            self.reconnects,
            self.dropped,
            self.faults_injected,
            self.dedup_hits,
            self.handled,
            self.plans_created,
            self.final_plans,
            self.p50_ms,
            self.p95_ms,
            self.seeds
        )
    }
}

/// One seed measured twice — observability off, then observability on
/// (a live [`mpq_obs::Obs`] handle installed for the whole run) — with
/// the bit-identity contract asserted at measure time: plan counters,
/// LP counts and final Pareto-set sizes must be equal, because spans
/// and registry mirrors only *read* the optimizer's counters.
#[derive(Debug, Clone, Copy)]
pub struct ObsRecord {
    /// Optimization wall time with observability off, milliseconds.
    pub off_ms: f64,
    /// Optimization wall time with a live handle installed, milliseconds.
    pub on_ms: f64,
    /// Spans the live handle recorded (`optimize` + one per DP level).
    pub spans: u64,
    /// Plans created (identical on both runs by contract).
    pub plans_created: u64,
    /// LPs solved (identical on both runs by contract).
    pub lps_solved: u64,
}

/// Measures one `(config, seed)` with observability off and on, asserting
/// the obs-off/obs-on bit-identity contract. The on-run uses a wall-clock
/// handle — this is the *overhead* measurement, so the clock must be the
/// real one the production path would read.
pub fn run_obs_pair(
    num_tables: usize,
    topology: Topology,
    num_params: usize,
    seed: u64,
    config: &OptimizerConfig,
) -> ObsRecord {
    let off = run_once(num_tables, topology, num_params, seed, config);
    let obs = mpq_obs::Obs::wall();
    let on = {
        let _guard = mpq_obs::install(&obs);
        run_once(num_tables, topology, num_params, seed, config)
    };
    assert_eq!(
        (off.plans_created, off.lps_solved, off.final_plans),
        (on.plans_created, on.lps_solved, on.final_plans),
        "obs: a live handle must only watch, never perturb"
    );
    ObsRecord {
        off_ms: off.time_ms,
        on_ms: on.time_ms,
        spans: obs.spans().len() as u64,
        plans_created: off.plans_created,
        lps_solved: off.lps_solved,
    }
}

/// One measured observability-overhead configuration of the schema-v10
/// `BENCH_rrpa.json` (`obs_entries`): obs-off vs obs-on medians for one
/// workload shape, with bit-identity asserted per seed at measure time.
#[derive(Debug, Clone)]
pub struct ObsBaselineEntry {
    /// Workload topology.
    pub workload: String,
    /// Tables per query.
    pub num_tables: usize,
    /// Parameters per query.
    pub num_params: usize,
    /// Median wall time with observability off (ms).
    pub median_off_ms: f64,
    /// Median wall time with a live handle installed (ms).
    pub median_on_ms: f64,
    /// Median overhead in percent: `(on - off) / off × 100`.
    pub overhead_pct: f64,
    /// Median spans recorded per observed run.
    pub spans: f64,
    /// Median created plans (identical obs-on/off by contract).
    pub plans_created: f64,
    /// Median solved LPs (identical obs-on/off by contract).
    pub lps_solved: f64,
    /// Number of seeds measured.
    pub seeds: usize,
}

impl ObsBaselineEntry {
    /// Medians over a per-seed record sample for one configuration.
    pub fn from_records(
        workload: &str,
        num_tables: usize,
        num_params: usize,
        records: &[ObsRecord],
    ) -> Self {
        let med = |f: &dyn Fn(&ObsRecord) -> f64| {
            let mut v: Vec<f64> = records.iter().map(f).collect();
            median(&mut v)
        };
        let median_off_ms = med(&|r| r.off_ms);
        let median_on_ms = med(&|r| r.on_ms);
        Self {
            workload: workload.to_string(),
            num_tables,
            num_params,
            median_off_ms,
            median_on_ms,
            overhead_pct: (median_on_ms - median_off_ms) / median_off_ms * 100.0,
            spans: med(&|r| r.spans as f64),
            plans_created: med(&|r| r.plans_created as f64),
            lps_solved: med(&|r| r.lps_solved as f64),
            seeds: records.len(),
        }
    }

    /// One `obs_entries` row.
    pub fn to_json(&self) -> String {
        format!(
            "    {{\"workload\": \"{}\", \"num_tables\": {}, \"num_params\": {}, \
             \"median_off_ms\": {:.3}, \"median_on_ms\": {:.3}, \"overhead_pct\": {:.2}, \
             \"spans\": {:.0}, \"plans_created\": {:.0}, \"lps_solved\": {:.0}, \
             \"seeds\": {}}}",
            self.workload,
            self.num_tables,
            self.num_params,
            self.median_off_ms,
            self.median_on_ms,
            self.overhead_pct,
            self.spans,
            self.plans_created,
            self.lps_solved,
            self.seeds
        )
    }
}

/// Serialises a baseline to the `BENCH_rrpa.json` format (hand-written
/// JSON: the workspace has no serde backend). `batch_entries` is the
/// schema-v3 batched-workload section, `mqo_entries` the schema-v7
/// shared-subplan section, `service_entries` the schema-v5 service
/// section, `chaos_entries` the schema-v6 fault-injection section,
/// `net_entries` the schema-v9 networked-fabric section and
/// `obs_entries` the schema-v10 observability-overhead section; pass
/// `&[]` to omit any of them.
#[allow(clippy::too_many_arguments)] // one slice per baseline section, by design
pub fn baseline_json(
    meta: &[(&str, String)],
    entries: &[BaselineEntry],
    batch_entries: &[BatchBaselineEntry],
    mqo_entries: &[MqoBaselineEntry],
    service_entries: &[ServiceBaselineEntry],
    chaos_entries: &[ChaosBaselineEntry],
    net_entries: &[NetBaselineEntry],
    obs_entries: &[ObsBaselineEntry],
) -> String {
    let mut out = String::from("{\n");
    for (k, v) in meta {
        out.push_str(&format!("  \"{k}\": {v},\n"));
    }
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&e.to_json());
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if !batch_entries.is_empty() {
        out.push_str(",\n  \"batch_entries\": [\n");
        for (i, e) in batch_entries.iter().enumerate() {
            out.push_str(&e.to_json());
            out.push_str(if i + 1 < batch_entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]");
    }
    if !mqo_entries.is_empty() {
        out.push_str(",\n  \"mqo_entries\": [\n");
        for (i, e) in mqo_entries.iter().enumerate() {
            out.push_str(&e.to_json());
            out.push_str(if i + 1 < mqo_entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]");
    }
    if !service_entries.is_empty() {
        out.push_str(",\n  \"service_entries\": [\n");
        for (i, e) in service_entries.iter().enumerate() {
            out.push_str(&e.to_json());
            out.push_str(if i + 1 < service_entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]");
    }
    if !chaos_entries.is_empty() {
        out.push_str(",\n  \"chaos_entries\": [\n");
        for (i, e) in chaos_entries.iter().enumerate() {
            out.push_str(&e.to_json());
            out.push_str(if i + 1 < chaos_entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]");
    }
    if !net_entries.is_empty() {
        out.push_str(",\n  \"net_entries\": [\n");
        for (i, e) in net_entries.iter().enumerate() {
            out.push_str(&e.to_json());
            out.push_str(if i + 1 < net_entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]");
    }
    if !obs_entries.is_empty() {
        out.push_str(",\n  \"obs_entries\": [\n");
        for (i, e) in obs_entries.iter().enumerate() {
            out.push_str(&e.to_json());
            out.push_str(if i + 1 < obs_entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn run_once_is_deterministic() {
        let config = OptimizerConfig::default_for(1);
        let a = run_once(3, Topology::Chain, 1, 7, &config);
        let b = run_once(3, Topology::Chain, 1, 7, &config);
        assert_eq!(a.plans_created, b.plans_created);
        assert_eq!(a.lps_solved, b.lps_solved);
        assert_eq!(a.final_plans, b.final_plans);
    }

    #[test]
    fn pwl_backend_runs_and_is_deterministic() {
        let config = OptimizerConfig::default_for(1);
        let a = run_once_in(SpaceKind::Pwl, 2, Topology::Chain, 1, 3, &config);
        let b = run_once_in(SpaceKind::Pwl, 2, Topology::Chain, 1, 3, &config);
        assert_eq!(a.plans_created, b.plans_created);
        assert_eq!(a.final_plans, b.final_plans);
        assert!(a.final_plans > 0);
    }

    #[test]
    fn space_kind_parses_cli_names() {
        assert_eq!(SpaceKind::parse("grid"), Some(SpaceKind::Grid));
        assert_eq!(SpaceKind::parse("pwl"), Some(SpaceKind::Pwl));
        assert_eq!(SpaceKind::parse("exact"), None);
        assert_eq!(SpaceKind::Pwl.name(), "pwl");
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let config = OptimizerConfig::default_for(1);
        let serial = fig12_row(3, Topology::Star, 1, 4, &config, 1);
        let parallel = fig12_row(3, Topology::Star, 1, 4, &config, 4);
        assert_eq!(serial.plans_created, parallel.plans_created);
        assert_eq!(serial.lps_solved, parallel.lps_solved);
    }

    #[test]
    fn sweep_threads_resolution_order() {
        assert_eq!(sweep_threads(Some(3)), 3);
        assert!(sweep_threads(None) >= 1);
    }

    #[test]
    fn baseline_json_shape() {
        let entries = vec![BaselineEntry {
            space: "grid".into(),
            workload: "chain".into(),
            num_tables: 10,
            num_params: 2,
            optimizer_threads: 4,
            median_time_ms: 12.5,
            plans_created: 100.0,
            lps_solved: 50.0,
            final_plans: 3.0,
            lp_breakdown: FastPathBreakdown::default(),
            seeds: 5,
        }];
        let json = baseline_json(
            &[("schema_version", "1".to_string())],
            &entries,
            &[],
            &[],
            &[],
            &[],
            &[],
            &[],
        );
        assert!(json.contains("\"workload\": \"chain\""));
        assert!(json.contains("\"schema_version\": 1"));
        assert!(!json.contains("batch_entries"));
        assert!(!json.contains("service_entries"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn batch_run_matches_one_by_one_counters() {
        let config = OptimizerConfig::default_for(1);
        let spec = WorkloadSpec {
            num_tables: 3,
            topology: Topology::Chain,
            num_params: 1,
            batch: 3,
            overlap: 1.0,
        };
        let cached = run_workload_in(SpaceKind::Grid, &spec, 5, &config, true);
        let uncached = run_workload_in(SpaceKind::Grid, &spec, 5, &config, false);
        assert_eq!(cached.plans_created, uncached.plans_created);
        assert_eq!(cached.final_plans, uncached.final_plans);
        assert_eq!(cached.lps_solved, uncached.lps_solved);
        assert!(cached.cache_hits > 0, "identical queries must share lifts");
        assert_eq!(uncached.cache_hits + uncached.cache_misses, 0);
    }

    #[test]
    fn batch_baseline_json_shape() {
        let batch = vec![BatchBaselineEntry {
            space: "grid".into(),
            workload: "chain".into(),
            num_tables: 5,
            num_params: 2,
            batch: 8,
            overlap: 1.0,
            optimizer_threads: 1,
            median_time_ms: 10.0,
            median_time_nocache_ms: 14.0,
            speedup: 1.4,
            cache_hits: 100.0,
            cache_misses: 20.0,
            plans_created: 500.0,
            final_plans: 12.0,
            lps_query_median: 123.0,
            seeds: 5,
        }];
        let json = baseline_json(
            &[("schema_version", "3".to_string())],
            &[],
            &batch,
            &[],
            &[],
            &[],
            &[],
            &[],
        );
        assert!(json.contains("\"batch_entries\""));
        assert!(json.contains("\"overlap\": 1"));
        assert!(json.contains("\"cache_hit_rate\": 0.833"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn mqo_run_matches_lift_only_counters() {
        let config = OptimizerConfig::default_for(1);
        let spec = WorkloadSpec {
            num_tables: 3,
            topology: Topology::Chain,
            num_params: 1,
            batch: 3,
            overlap: 1.0,
        };
        let mqo = run_workload_mqo(SpaceKind::Grid, &spec, 5, &config, None);
        let lift = run_workload_in(SpaceKind::Grid, &spec, 5, &config, true);
        assert_eq!(mqo.plans_created, lift.plans_created);
        assert_eq!(mqo.final_plans, lift.final_plans);
        assert!(
            mqo.subtree_hits > 0,
            "identical queries must replay whole subtrees"
        );
        assert_eq!(mqo.subtree_evictions, 0, "unbounded cache never evicts");
        // Pass-through capacity: no hits, same plans.
        let passthrough = run_workload_mqo(SpaceKind::Grid, &spec, 5, &config, Some(0));
        assert_eq!(passthrough.subtree_hits, 0);
        assert_eq!(passthrough.plans_created, lift.plans_created);
    }

    #[test]
    fn mqo_baseline_json_shape() {
        let mqo = vec![MqoBaselineEntry {
            space: "grid".into(),
            workload: "chain".into(),
            num_tables: 4,
            num_params: 1,
            batch: 16,
            overlap: 1.0,
            subtree_capacity: None,
            optimizer_threads: 1,
            median_time_ms: 2.0,
            median_time_lift_ms: 8.0,
            speedup: 4.0,
            subtree_hits: 90.0,
            subtree_misses: 10.0,
            subtree_evictions: 0.0,
            plans_created: 500.0,
            final_plans: 12.0,
            seeds: 5,
        }];
        let json = baseline_json(
            &[("schema_version", "7".to_string())],
            &[],
            &[],
            &mqo,
            &[],
            &[],
            &[],
            &[],
        );
        assert!(json.contains("\"mqo_entries\""));
        assert!(json.contains("\"subtree_capacity\": null"));
        assert!(json.contains("\"subtree_hit_rate\": 0.900"));
        assert!(json.contains("\"speedup\": 4.000"));
        assert!(json.trim_end().ends_with('}'));
    }

    /// An ε-approximate run shrinks (never grows) the frontier, the
    /// entry reduces the per-seed sample to the committed ratios, and
    /// the JSON row keeps its schema-v8 shape.
    #[test]
    fn approx_baseline_entry_and_json_shape() {
        let mut config = OptimizerConfig::default_for(2);
        config.threads = Some(1);
        let records: Vec<ApproxRecord> = (0..2)
            .map(|s| run_approx_once(SpaceKind::Grid, 3, Topology::Chain, 2, s, &config, 0.1))
            .collect();
        let entry =
            ApproxBaselineEntry::from_records(SpaceKind::Grid, "chain", 3, 2, 0.1, &records);
        assert_eq!(entry.seeds, 2);
        assert!(entry.final_plans <= entry.final_plans_exact);
        assert!(entry.frontier_reduction >= 1.0);
        assert!(entry.lps_solved <= entry.lps_solved_exact);
        let json = entry.to_json();
        assert!(json.contains("\"epsilon\": 0.1"));
        assert!(json.contains("\"median_time_exact_ms\""));
        assert!(json.contains("\"lp_speedup\""));
        assert!(json.contains("\"frontier_reduction\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        // ε = 0 runs both sides exactly: every counter pair must agree.
        let zero = run_approx_once(SpaceKind::Grid, 3, Topology::Chain, 2, 0, &config, 0.0);
        assert_eq!(
            (
                zero.approx.plans_created,
                zero.approx.lps_solved,
                zero.approx.final_plans
            ),
            (
                zero.exact.plans_created,
                zero.exact.lps_solved,
                zero.exact.final_plans
            )
        );
    }

    fn tiny_service_spec() -> ServiceSpec {
        ServiceSpec {
            num_tables: 3,
            topology: Topology::Chain,
            num_params: 1,
            trace: 6,
            overlap: 1.0,
            shards: 2,
            max_batch: 2,
            max_wait_us: 100,
            mean_gap_us: 50,
            capacity: None,
            subtree: None,
            approx_epsilon: None,
        }
    }

    /// Virtual-clock service traces replay bit-identically: every counter
    /// (including the trigger mix) repeats run for run.
    #[test]
    fn service_trace_is_deterministic() {
        let mut config = OptimizerConfig::default_for(1);
        config.threads = Some(1);
        let spec = tiny_service_spec();
        let a = run_service_trace(&spec, 3, &config);
        let b = run_service_trace(&spec, 3, &config);
        assert_eq!(a.plans_created, b.plans_created);
        assert_eq!(a.final_plans, b.final_plans);
        assert_eq!(a.lps_solved, b.lps_solved);
        assert_eq!(a.batches, b.batches);
        assert_eq!(
            (a.size_triggered, a.deadline_triggered, a.drain_triggered),
            (b.size_triggered, b.deadline_triggered, b.drain_triggered),
            "virtual-clock trigger mix replays exactly"
        );
        assert_eq!(
            (a.cache_hits, a.cache_misses),
            (b.cache_hits, b.cache_misses)
        );
        assert_eq!(
            a.batches,
            a.size_triggered + a.deadline_triggered + a.drain_triggered
        );
        // With the subtree cache default-on, duplicate queries can be
        // absorbed at the subtree layer before the lift cache sees them.
        assert!(
            a.cache_hits + a.subtree_hits > 0,
            "overlap-1.0 trace must share work across queries"
        );
    }

    #[test]
    fn service_baseline_json_shape() {
        let mut config = OptimizerConfig::default_for(1);
        config.threads = Some(1);
        let spec = ServiceSpec {
            capacity: Some(8),
            ..tiny_service_spec()
        };
        let rec = run_service_trace(&spec, 1, &config);
        let entry = ServiceBaselineEntry::from_records(&spec, "chain", &[rec]);
        let json = baseline_json(
            &[("schema_version", "5".to_string())],
            &[],
            &[],
            &[],
            &[entry],
            &[],
            &[],
            &[],
        );
        assert!(json.contains("\"service_entries\""));
        assert!(json.contains("\"capacity\": 8"));
        assert!(json.contains("\"p95_ms\""));
        assert!(json.trim_end().ends_with('}'));
        // Unbounded capacity serialises as null.
        let spec = tiny_service_spec();
        let entry = ServiceBaselineEntry::from_records(
            &spec,
            "chain",
            &[run_service_trace(&spec, 1, &config)],
        );
        let json = baseline_json(&[], &[], &[], &[], &[entry], &[], &[], &[]);
        assert!(json.contains("\"capacity\": null"));
    }

    /// Chaos runs replay bit-identically under the seeded fault plan:
    /// the same seed poisons the same queries, quarantines the same
    /// count, and the healthy remainder repeats its plan counters run
    /// for run. `run_chaos_trace` itself asserts the robustness
    /// contract, so a green test also certifies outcome accounting and
    /// healthy-plan equality.
    #[test]
    fn chaos_trace_is_deterministic() {
        let mut config = OptimizerConfig::default_for(1);
        config.threads = Some(1);
        // Distinct shapes (overlap 0.0): poison identity is a content
        // digest, so copies of one query would share a fault fate.
        let spec = ServiceSpec {
            overlap: 0.0,
            trace: 8,
            ..tiny_service_spec()
        };
        let a = run_chaos_trace(&spec, 0.4, 5, &config);
        let b = run_chaos_trace(&spec, 0.4, 5, &config);
        assert!(a.quarantined > 0, "rate 0.4 over 8 queries must poison");
        assert!(a.healthy > 0, "healthy queries must survive");
        assert_eq!(a.healthy, b.healthy);
        assert_eq!(a.quarantined, b.quarantined);
        assert_eq!(a.restarts, b.restarts);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.healthy_plans_created, b.healthy_plans_created);
        assert_eq!(a.healthy_final_plans, b.healthy_final_plans);
        assert_eq!(a.lps_solved, b.lps_solved);
        assert!(a.restarts >= a.quarantined);
    }

    #[test]
    fn chaos_baseline_json_shape() {
        let mut config = OptimizerConfig::default_for(1);
        config.threads = Some(1);
        let spec = ServiceSpec {
            overlap: 0.0,
            trace: 8,
            ..tiny_service_spec()
        };
        let rec = run_chaos_trace(&spec, 0.4, 5, &config);
        let entry = ChaosBaselineEntry::from_records(&spec, "chain", 0.4, &[rec]);
        let json = baseline_json(
            &[("schema_version", "6".to_string())],
            &[],
            &[],
            &[],
            &[],
            &[entry],
            &[],
            &[],
        );
        assert!(json.contains("\"schema_version\": 6"));
        assert!(json.contains("\"chaos_entries\""));
        assert!(json.contains("\"fault_rate\": 0.4"));
        assert!(json.contains("\"quarantined\""));
        assert!(json.contains("\"restarts\""));
        assert!(json.contains("\"p95_ms\""));
        assert!(json.trim_end().ends_with('}'));
    }

    /// Networked runs replay bit-identically under the seeded fault
    /// plan. `run_net_trace` asserts the full contract at measure time
    /// (answers bit-identical to in-process, conservation, clean-wire
    /// zero effort), so a green test certifies all of it; here we add
    /// determinism, the schema-v9 JSON shape and the schema read-back
    /// used by the merge guard.
    #[test]
    fn net_trace_is_deterministic_and_json_shape_holds() {
        use mpq_catalog::fault::NetFaultKind;
        let mut config = OptimizerConfig::default_for(1);
        config.threads = Some(1);
        config.grid_resolution = 4;
        let spec = NetSpec {
            num_tables: 3,
            topology: Topology::Chain,
            num_params: 1,
            trace: 5,
            overlap: 0.5,
            shards: 2,
            fault_kind: Some(NetFaultKind::Drop),
            fault_rate: 0.3,
            mean_gap_us: 25,
        };
        let a = run_net_trace(&spec, 4, &config);
        let b = run_net_trace(&spec, 4, &config);
        assert_eq!(a.completed, b.completed);
        assert_eq!(
            (a.retries, a.reconnects, a.dropped, a.faults_injected),
            (b.retries, b.reconnects, b.dropped, b.faults_injected)
        );
        assert_eq!(a.plans_created, b.plans_created);
        assert_eq!(a.final_plans, b.final_plans);
        let clean = run_net_trace(
            &NetSpec {
                fault_kind: None,
                fault_rate: 0.0,
                ..spec
            },
            4,
            &config,
        );
        assert_eq!((clean.retries, clean.reconnects, clean.dropped), (0, 0, 0));
        let entry = NetBaselineEntry::from_records(&spec, "chain", &[a, b]);
        let json = baseline_json(
            &[("schema_version", BENCH_SCHEMA_VERSION.to_string())],
            &[],
            &[],
            &[],
            &[],
            &[],
            &[entry],
            &[],
        );
        assert!(json.contains("\"net_entries\""));
        assert!(json.contains("\"fault_kind\": \"drop\""));
        assert!(json.contains("\"dedup_hits\""));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(baseline_schema_version(&json), Some(BENCH_SCHEMA_VERSION));
        // The bump helper rewrites stale stamps to the current version.
        let mut stale = json.replace("\"schema_version\": 9", "\"schema_version\": 7");
        bump_schema(&mut stale);
        assert_eq!(baseline_schema_version(&stale), Some(BENCH_SCHEMA_VERSION));
    }
}
