//! Experiment execution: single runs, seed sweeps, medians.

use mpq_catalog::generator::{generate, GeneratorConfig};
use mpq_catalog::graph::Topology;
use mpq_cloud::model::CloudCostModel;
use mpq_core::grid_space::GridSpace;
use mpq_core::rrpa::optimize;
use mpq_core::OptimizerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Metrics of a single optimization run (one random query).
#[derive(Debug, Clone, Copy)]
pub struct RunRecord {
    /// Optimization wall time in milliseconds.
    pub time_ms: f64,
    /// Plans generated, including partial and pruned plans.
    pub plans_created: u64,
    /// Linear programs solved.
    pub lps_solved: u64,
    /// Plans in the final Pareto plan set.
    pub final_plans: usize,
}

/// Runs PWL-RRPA (grid space) on one random query from the paper's
/// generator setup.
pub fn run_once(
    num_tables: usize,
    topology: Topology,
    num_params: usize,
    seed: u64,
    config: &OptimizerConfig,
) -> RunRecord {
    let query = generate(
        &GeneratorConfig::paper(num_tables, topology, num_params),
        &mut StdRng::seed_from_u64(seed),
    );
    let model = CloudCostModel::default();
    let space = GridSpace::for_unit_box(num_params, config, model_num_metrics(&model))
        .expect("valid grid configuration");
    let solution = optimize(&query, &model, &space, config);
    RunRecord {
        time_ms: solution.stats.elapsed.as_secs_f64() * 1e3,
        plans_created: solution.stats.plans_created,
        lps_solved: solution.stats.lps_solved,
        final_plans: solution.stats.final_plan_count,
    }
}

fn model_num_metrics(model: &CloudCostModel) -> usize {
    use mpq_cloud::model::ParametricCostModel;
    model.num_metrics()
}

/// Median of a float sample (empty samples yield NaN).
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite metric values"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// One row of Figure 12: medians over `seeds` random queries.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Row {
    /// Number of tables joined.
    pub num_tables: usize,
    /// Median optimization time in milliseconds.
    pub time_ms: f64,
    /// Median number of created plans.
    pub plans_created: f64,
    /// Median number of solved LPs.
    pub lps_solved: f64,
    /// Median Pareto-plan-set size of the full query.
    pub final_plans: f64,
}

/// Computes one Figure 12 row, running the seed sweep on `threads` worker
/// threads (each seed is an independent optimization).
pub fn fig12_row(
    num_tables: usize,
    topology: Topology,
    num_params: usize,
    seeds: usize,
    config: &OptimizerConfig,
    threads: usize,
) -> Fig12Row {
    let records: Vec<RunRecord> = if threads <= 1 {
        (0..seeds)
            .map(|s| run_once(num_tables, topology, num_params, s as u64, config))
            .collect()
    } else {
        // Work queue over seed indices; each worker claims the next seed.
        let next = AtomicUsize::new(0);
        let results = std::sync::Mutex::new(vec![None; seeds]);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(seeds) {
                scope.spawn(|_| loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= seeds {
                        break;
                    }
                    let rec = run_once(num_tables, topology, num_params, s as u64, config);
                    results.lock().expect("result slots")[s] = Some(rec);
                });
            }
        })
        .expect("seed sweep workers");
        results
            .into_inner()
            .expect("result slots")
            .into_iter()
            .map(|r| r.expect("all seeds ran"))
            .collect()
    };
    let mut time: Vec<f64> = records.iter().map(|r| r.time_ms).collect();
    let mut plans: Vec<f64> = records.iter().map(|r| r.plans_created as f64).collect();
    let mut lps: Vec<f64> = records.iter().map(|r| r.lps_solved as f64).collect();
    let mut fin: Vec<f64> = records.iter().map(|r| r.final_plans as f64).collect();
    Fig12Row {
        num_tables,
        time_ms: median(&mut time),
        plans_created: median(&mut plans),
        lps_solved: median(&mut lps),
        final_plans: median(&mut fin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn run_once_is_deterministic() {
        let config = OptimizerConfig::default_for(1);
        let a = run_once(3, Topology::Chain, 1, 7, &config);
        let b = run_once(3, Topology::Chain, 1, 7, &config);
        assert_eq!(a.plans_created, b.plans_created);
        assert_eq!(a.lps_solved, b.lps_solved);
        assert_eq!(a.final_plans, b.final_plans);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let config = OptimizerConfig::default_for(1);
        let serial = fig12_row(3, Topology::Star, 1, 4, &config, 1);
        let parallel = fig12_row(3, Topology::Star, 1, 4, &config, 4);
        assert_eq!(serial.plans_created, parallel.plans_created);
        assert_eq!(serial.lps_solved, parallel.lps_solved);
    }
}
