//! The paper's Section 4 counterexample cost functions (Figures 4–6),
//! shared by the `table1` and `figures` binaries.

use mpq_cost::{LinearFn, LinearPiece, MultiCostFn, PwlFn};
use mpq_geometry::Polytope;

fn interval(lo: f64, hi: f64) -> Polytope {
    Polytope::from_box(&[lo], &[hi])
}

fn linear(region: Polytope, w: f64, b: f64) -> PwlFn {
    PwlFn::from_linear(region, LinearFn::new(vec![w], b))
}

/// A 1-D PWL function assembled from `(lo, hi, w, b)` pieces.
pub fn pwl(pieces: &[(f64, f64, f64, f64)]) -> PwlFn {
    PwlFn::new(
        1,
        pieces
            .iter()
            .map(|&(lo, hi, w, b)| LinearPiece {
                region: std::sync::Arc::new(interval(lo, hi)),
                f: LinearFn::new(vec![w], b),
            })
            .collect(),
    )
}

/// Figure 4 (M1 / M3a): plan 2 is Pareto-optimal on `[0,1)` and `[2,3]`
/// but not between; parameter domain `[0, 3]`.
pub fn figure4_plans() -> Vec<(&'static str, MultiCostFn)> {
    let x = interval(0.0, 3.0);
    vec![
        (
            "Plan 1",
            MultiCostFn::new(vec![
                pwl(&[(0.0, 2.0, -1.0, 2.0), (2.0, 3.0, 0.0, 0.0)]),
                linear(x.clone(), 0.0, 0.25),
            ]),
        ),
        (
            "Plan 2",
            MultiCostFn::new(vec![
                linear(x, 0.0, 1.0),
                pwl(&[
                    (0.0, 1.0, 0.0, 0.5),
                    (1.0, 2.0, 0.0, 2.0),
                    (2.0, 3.0, 0.0, 0.1),
                ]),
            ]),
        ),
    ]
}

/// Figure 5 (M2): plan 1 costs `(x1, x2)`, plan 2 costs `(1, 1)` on
/// `[0,2]²`; plan 2's Pareto region is the non-convex complement of the
/// unit square.
pub fn figure5_plans() -> Vec<(&'static str, MultiCostFn)> {
    let square = Polytope::from_box(&[0.0, 0.0], &[2.0, 2.0]);
    vec![
        (
            "Plan 1",
            MultiCostFn::new(vec![
                PwlFn::from_linear(square.clone(), LinearFn::new(vec![1.0, 0.0], 0.0)),
                PwlFn::from_linear(square.clone(), LinearFn::new(vec![0.0, 1.0], 0.0)),
            ]),
        ),
        (
            "Plan 2",
            MultiCostFn::new(vec![
                PwlFn::from_linear(square.clone(), LinearFn::new(vec![0.0, 0.0], 1.0)),
                PwlFn::from_linear(square, LinearFn::new(vec![0.0, 0.0], 1.0)),
            ]),
        ),
    ]
}

/// Figure 6 (M3b): plan 3 is Pareto-optimal strictly inside `(0.5, 1.5)`
/// but at neither end; parameter domain `[0, 2]`.
pub fn figure6_plans() -> Vec<(&'static str, MultiCostFn)> {
    let x = interval(0.0, 2.0);
    vec![
        (
            "Plan 1",
            MultiCostFn::new(vec![
                linear(x.clone(), -1.0, 2.0),
                linear(x.clone(), 1.0, 0.0),
            ]),
        ),
        (
            "Plan 2",
            MultiCostFn::new(vec![
                linear(x.clone(), 1.0, 0.0),
                linear(x.clone(), -1.0, 2.0),
            ]),
        ),
        (
            "Plan 3",
            MultiCostFn::new(vec![
                pwl(&[(0.0, 1.0, -0.4, 0.7), (1.0, 2.0, 0.4, -0.1)]),
                linear(x, 0.0, 2.0),
            ]),
        ),
    ]
}

/// Names of the Pareto-optimal plans at `x` (strict-domination filter).
pub fn pareto_at(plans: &[(&'static str, MultiCostFn)], x: &[f64]) -> Vec<&'static str> {
    let costs: Vec<Vec<f64>> = plans
        .iter()
        .map(|(_, f)| f.eval(x).expect("inside domain"))
        .collect();
    plans
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            !costs
                .iter()
                .any(|other| mpq_cost::strictly_dominates(other, &costs[*i], 1e-9))
        })
        .map(|(_, (name, _))| *name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_table_matches_paper() {
        let plans = figure4_plans();
        assert_eq!(pareto_at(&plans, &[0.5]), vec!["Plan 1", "Plan 2"]);
        assert_eq!(pareto_at(&plans, &[1.5]), vec!["Plan 1"]);
        assert_eq!(pareto_at(&plans, &[2.5]), vec!["Plan 1", "Plan 2"]);
    }

    #[test]
    fn figure6_table_matches_paper() {
        let plans = figure6_plans();
        assert_eq!(pareto_at(&plans, &[0.25]), vec!["Plan 1", "Plan 2"]);
        assert_eq!(
            pareto_at(&plans, &[1.0]),
            vec!["Plan 1", "Plan 2", "Plan 3"]
        );
        assert_eq!(pareto_at(&plans, &[0.75]).len(), 3);
        assert_eq!(pareto_at(&plans, &[1.75]), vec!["Plan 1", "Plan 2"]);
    }

    #[test]
    fn figure5_pareto_region_nonconvex() {
        let plans = figure5_plans();
        // Plan 2 Pareto outside the unit square, dominated inside.
        assert_eq!(pareto_at(&plans, &[1.5, 0.1]).len(), 2);
        assert_eq!(pareto_at(&plans, &[0.4, 0.4]), vec!["Plan 1"]);
    }
}
