//! Property-based tests: the symbolic cost-function algebra must agree with
//! pointwise evaluation everywhere.

use mpq_cost::{approx, GridCost, LinearFn, MultiCostFn, PwlFn};
use mpq_geometry::grid::{lattice, ParamGrid};
use mpq_geometry::Polytope;
use mpq_lp::LpCtx;
use proptest::prelude::*;
use std::sync::Arc;

fn small_coeff() -> impl Strategy<Value = f64> {
    (-20i32..=20).prop_map(|v| v as f64 / 4.0)
}

fn linear_fn(dim: usize) -> impl Strategy<Value = LinearFn> {
    (prop::collection::vec(small_coeff(), dim), small_coeff())
        .prop_map(|(w, b)| LinearFn::new(w, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pwl_add_matches_pointwise(f1 in linear_fn(2), f2 in linear_fn(2), g in linear_fn(2)) {
        let ctx = LpCtx::new();
        let square = Polytope::from_box(&[0.0, 0.0], &[1.0, 1.0]);
        // A two-piece function split along x0 = 0.5 plus a one-piece one.
        let left = square.clone().with(mpq_geometry::Halfspace::proper(vec![1.0, 0.0], 0.5));
        let right = square.clone().with(mpq_geometry::Halfspace::proper(vec![-1.0, 0.0], -0.5));
        let f = PwlFn::new(2, vec![
            mpq_cost::LinearPiece { region: left.into(), f: f1.clone() },
            mpq_cost::LinearPiece { region: right.into(), f: f2.clone() },
        ]);
        let gf = PwlFn::from_linear(square, g.clone());
        let sum = f.add(&gf, &ctx);
        for p in lattice(&[0.01, 0.01], &[0.99, 0.99], 6) {
            let expect = f.eval(&p).unwrap() + g.eval(&p);
            let got = sum.eval(&p).unwrap();
            prop_assert!((got - expect).abs() < 1e-7, "at {:?}: {} vs {}", p, got, expect);
        }
    }

    #[test]
    fn pwl_max_min_match_pointwise(f in linear_fn(2), g in linear_fn(2)) {
        let ctx = LpCtx::new();
        let square = Polytope::from_box(&[0.0, 0.0], &[1.0, 1.0]);
        let ff = PwlFn::from_linear(square.clone(), f.clone());
        let gg = PwlFn::from_linear(square, g.clone());
        let mx = ff.max(&gg, &ctx);
        let mn = ff.min(&gg, &ctx);
        for p in lattice(&[0.02, 0.03], &[0.97, 0.96], 5) {
            let (fv, gv) = (f.eval(&p), g.eval(&p));
            prop_assert!((mx.eval(&p).unwrap() - fv.max(gv)).abs() < 1e-7);
            prop_assert!((mn.eval(&p).unwrap() - fv.min(gv)).abs() < 1e-7);
        }
    }

    #[test]
    fn dominance_regions_match_pointwise(
        a_time in linear_fn(1), a_fees in linear_fn(1),
        b_time in linear_fn(1), b_fees in linear_fn(1),
    ) {
        let ctx = LpCtx::new();
        let x = Polytope::from_box(&[0.0], &[1.0]);
        let a = MultiCostFn::new(vec![
            PwlFn::from_linear(x.clone(), a_time.clone()),
            PwlFn::from_linear(x.clone(), a_fees.clone()),
        ]);
        let b = MultiCostFn::new(vec![
            PwlFn::from_linear(x.clone(), b_time.clone()),
            PwlFn::from_linear(x, b_fees.clone()),
        ]);
        let dom = a.dominance_regions(&b, &ctx);
        // Strictly-interior sample points avoid boundary ambiguity.
        for p in lattice(&[0.017], &[0.989], 31) {
            let should = a_time.eval(&p) <= b_time.eval(&p) + 1e-9
                && a_fees.eval(&p) <= b_fees.eval(&p) + 1e-9;
            let in_region = dom.iter().any(|r| r.contains_point(&p));
            // The symbolic region may disagree only within tolerance of a
            // metric boundary; re-check with a slack margin before failing.
            if should != in_region {
                let margin = (a_time.eval(&p) - b_time.eval(&p))
                    .abs()
                    .min((a_fees.eval(&p) - b_fees.eval(&p)).abs());
                prop_assert!(
                    margin < 1e-5,
                    "mismatch at {:?} far from any boundary (margin {})", p, margin
                );
            }
        }
    }

    #[test]
    fn grid_cost_agrees_with_general_representation(
        res in 1usize..4,
        w0 in small_coeff(), w1 in small_coeff(), b in small_coeff(),
    ) {
        let grid = Arc::new(ParamGrid::new(&[0.0, 0.0], &[1.0, 1.0], res).unwrap());
        let closure = move |x: &[f64]| vec![w0 * x[0] + w1 * x[1] + b, x[0] * x[1]];
        let gc = GridCost::from_closure(Arc::clone(&grid), 2, closure);
        let mc = approx::multi_from_closure(&grid, 2, move |x| {
            vec![w0 * x[0] + w1 * x[1] + b, x[0] * x[1]]
        });
        for p in lattice(&[0.0, 0.0], &[1.0, 1.0], 4) {
            let gv = gc.eval(&p);
            let mv = mc.eval(&p).unwrap();
            prop_assert!((gv[0] - mv[0]).abs() < 1e-7 && (gv[1] - mv[1]).abs() < 1e-7);
        }
    }

    #[test]
    fn grid_dominates_everywhere_is_sound(
        fa in linear_fn(2), fb in linear_fn(2),
    ) {
        let grid = Arc::new(ParamGrid::new(&[0.0, 0.0], &[1.0, 1.0], 2).unwrap());
        let a = GridCost::from_closure(Arc::clone(&grid), 1, |x| vec![fa.eval(x)]);
        let b = GridCost::from_closure(Arc::clone(&grid), 1, |x| vec![fb.eval(x)]);
        if a.dominates_everywhere(&b) {
            for p in lattice(&[0.0, 0.0], &[1.0, 1.0], 6) {
                prop_assert!(fa.eval(&p) <= fb.eval(&p) + 1e-6,
                    "claimed dominance violated at {:?}", p);
            }
        }
    }
}
