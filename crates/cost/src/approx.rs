//! PWL approximation of arbitrary cost closures on a parameter grid.
//!
//! The paper (Sections 2 and 6.1, citing Hulgeri & Sudarshan) relies on the
//! fact that PWL functions approximate arbitrary cost functions to any
//! desired precision. This module realises that: a scalar closure is
//! evaluated at the grid vertices and linearly interpolated through the
//! vertices of each Kuhn simplex. The approximation is
//!
//! * **exact at every grid vertex**,
//! * **exact everywhere** when the closure is affine, and
//! * converging to the closure as the grid resolution grows (for
//!   continuous closures).
//!
//! Vertex evaluations are cached across simplices (each interior vertex is
//! shared by up to `2ᵈ · d!` simplices), so a closure is evaluated exactly
//! `(resolution + 1)ᵈ` times per metric.

use crate::{CostVec, LinearFn, LinearPiece, MultiCostFn, PwlFn};
use mpq_geometry::grid::{GridSimplex, ParamGrid};
use std::collections::HashMap;

/// Interpolates the unique linear function through the simplex vertices
/// with the given values (`values[i]` at `simplex.vertices[i]`).
///
/// Returns `None` if the simplex is degenerate (never the case for
/// [`ParamGrid`] simplices).
pub fn interpolate_simplex(simplex: &GridSimplex, values: &[f64]) -> Option<LinearFn> {
    let d = simplex.vertices[0].len();
    debug_assert_eq!(values.len(), d + 1);
    // Solve  [vᵢ 1] · [w; b] = valuesᵢ  for i = 0..d, staged as one flat
    // row-major matrix.
    let mut a = Vec::with_capacity((d + 1) * (d + 1));
    for v in &simplex.vertices {
        a.extend_from_slice(v);
        a.push(1.0);
    }
    let sol = mpq_lp::dense::solve_linear_system(a, values.to_vec())?;
    let (w, b) = sol.split_at(d);
    Some(LinearFn::new(w.to_vec(), b[0]))
}

/// Integer key for a grid vertex (exact within one grid).
fn vertex_key(grid: &ParamGrid, v: &[f64]) -> Vec<i64> {
    v.iter()
        .enumerate()
        .map(|(j, &x)| {
            let h = (grid.hi()[j] - grid.lo()[j]) / grid.resolution() as f64;
            ((x - grid.lo()[j]) / h).round() as i64
        })
        .collect()
}

/// Evaluates `f` once per distinct grid vertex and interpolates a linear
/// function on every simplex. Index `i` of the result corresponds to
/// simplex id `i`.
pub fn approximate_scalar(grid: &ParamGrid, mut f: impl FnMut(&[f64]) -> f64) -> Vec<LinearFn> {
    let mut cache: HashMap<Vec<i64>, f64> = HashMap::new();
    grid.simplices()
        .iter()
        .map(|s| {
            let values: Vec<f64> = s
                .vertices
                .iter()
                .map(|v| *cache.entry(vertex_key(grid, v)).or_insert_with(|| f(v)))
                .collect();
            interpolate_simplex(s, &values).expect("grid simplices are non-degenerate")
        })
        .collect()
}

/// Builds a general [`PwlFn`] approximating `f` on the grid.
pub fn pwl_from_closure(grid: &ParamGrid, f: impl FnMut(&[f64]) -> f64) -> PwlFn {
    let fns = approximate_scalar(grid, f);
    let pieces = grid
        .simplices()
        .iter()
        .zip(fns)
        .map(|(s, lin)| LinearPiece {
            region: s.polytope.clone(),
            f: lin,
        })
        .collect();
    PwlFn::new(grid.dim(), pieces)
}

/// Builds a [`MultiCostFn`] approximating the vector-valued closure `f`
/// (which must return `num_metrics` values) on the grid.
pub fn multi_from_closure(
    grid: &ParamGrid,
    num_metrics: usize,
    f: impl Fn(&[f64]) -> CostVec,
) -> MultiCostFn {
    let metrics = (0..num_metrics)
        .map(|m| {
            pwl_from_closure(grid, |x| {
                let v = f(x);
                debug_assert_eq!(v.len(), num_metrics);
                v[m]
            })
        })
        .collect();
    MultiCostFn::new(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_geometry::grid::lattice;

    #[test]
    fn affine_closures_are_exact_everywhere() {
        let grid = ParamGrid::new(&[0.0, 0.0], &[1.0, 1.0], 3).unwrap();
        let f = pwl_from_closure(&grid, |x| 2.0 * x[0] - 3.0 * x[1] + 1.0);
        for p in lattice(&[0.0, 0.0], &[1.0, 1.0], 9) {
            let expect = 2.0 * p[0] - 3.0 * p[1] + 1.0;
            let got = f.eval(&p).unwrap();
            assert!((got - expect).abs() < 1e-9, "at {p:?}: {got} vs {expect}");
        }
    }

    #[test]
    fn product_is_exact_at_vertices() {
        let grid = ParamGrid::new(&[0.0, 0.0], &[1.0, 1.0], 2).unwrap();
        let f = pwl_from_closure(&grid, |x| x[0] * x[1]);
        for v in grid.vertex_points() {
            let got = f.eval(&v).unwrap();
            assert!(
                (got - v[0] * v[1]).abs() < 1e-9,
                "vertex {v:?}: {got} vs {}",
                v[0] * v[1]
            );
        }
    }

    #[test]
    fn refinement_reduces_error() {
        let target = |x: &[f64]| x[0] * x[0];
        let err = |res: usize| {
            let grid = ParamGrid::new(&[0.0], &[1.0], res).unwrap();
            let f = pwl_from_closure(&grid, target);
            lattice(&[0.0], &[1.0], 101)
                .iter()
                .map(|p| (f.eval(p).unwrap() - target(p)).abs())
                .fold(0.0f64, f64::max)
        };
        let coarse = err(2);
        let fine = err(8);
        assert!(
            fine < coarse / 4.0,
            "expected ~quadratic error decay: {coarse} -> {fine}"
        );
    }

    #[test]
    fn multi_closure_builds_all_metrics() {
        let grid = ParamGrid::new(&[0.0], &[1.0], 2).unwrap();
        let mc = multi_from_closure(&grid, 2, |x| vec![x[0], 1.0 - x[0]]);
        assert_eq!(mc.num_metrics(), 2);
        let v = mc.eval(&[0.25]).unwrap();
        assert!((v[0] - 0.25).abs() < 1e-9 && (v[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn interpolation_matches_vertex_values() {
        let grid = ParamGrid::new(&[0.0, 0.0], &[2.0, 2.0], 2).unwrap();
        let s = grid.simplex(3);
        let values: Vec<f64> = s.vertices.iter().map(|v| v[0] * 7.0 + v[1]).collect();
        let lin = interpolate_simplex(s, &values).unwrap();
        for (v, val) in s.vertices.iter().zip(&values) {
            assert!((lin.eval(v) - val).abs() < 1e-9);
        }
    }
}
