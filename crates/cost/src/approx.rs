//! PWL approximation of arbitrary cost closures on a parameter grid.
//!
//! The paper (Sections 2 and 6.1, citing Hulgeri & Sudarshan) relies on the
//! fact that PWL functions approximate arbitrary cost functions to any
//! desired precision. This module realises that: a scalar closure is
//! evaluated at the grid vertices and linearly interpolated through the
//! vertices of each Kuhn simplex. The approximation is
//!
//! * **exact at every grid vertex**,
//! * **exact everywhere** when the closure is affine, and
//! * converging to the closure as the grid resolution grows (for
//!   continuous closures).
//!
//! Vertex evaluations are cached across simplices (each interior vertex is
//! shared by up to `2ᵈ · d!` simplices), and vector-valued closures are
//! evaluated **once per distinct vertex for all metrics**
//! ([`approximate_vector`]): a closure is evaluated exactly
//! `(resolution + 1)ᵈ` times per lift, however many metrics it prices.
//! Piece regions of general PWL liftings are the grid's interned
//! (`Arc`-shared) simplex polytopes, so lifting never clones simplex
//! geometry.

use crate::{CostVec, LinearFn, LinearPiece, MultiCostFn, PwlFn};
use mpq_geometry::grid::{GridSimplex, ParamGrid};
use std::collections::HashMap;
use std::sync::Arc;

/// Interpolates the unique linear function through the simplex vertices
/// with the given values (`values[i]` at `simplex.vertices[i]`).
///
/// Returns `None` if the simplex is degenerate (never the case for
/// [`ParamGrid`] simplices).
pub fn interpolate_simplex(simplex: &GridSimplex, values: &[f64]) -> Option<LinearFn> {
    let d = simplex.vertices[0].len();
    debug_assert_eq!(values.len(), d + 1);
    // Solve  [vᵢ 1] · [w; b] = valuesᵢ  for i = 0..d, staged as one flat
    // row-major matrix.
    let mut a = Vec::with_capacity((d + 1) * (d + 1));
    for v in &simplex.vertices {
        a.extend_from_slice(v);
        a.push(1.0);
    }
    let sol = mpq_lp::dense::solve_linear_system(a, values.to_vec())?;
    let (w, b) = sol.split_at(d);
    Some(LinearFn::new(w.to_vec(), b[0]))
}

/// Integer key for a grid vertex (exact within one grid).
fn vertex_key(grid: &ParamGrid, v: &[f64]) -> Vec<i64> {
    v.iter()
        .enumerate()
        .map(|(j, &x)| {
            let h = (grid.hi()[j] - grid.lo()[j]) / grid.resolution() as f64;
            ((x - grid.lo()[j]) / h).round() as i64
        })
        .collect()
}

/// Evaluates `f` once per distinct grid vertex and interpolates a linear
/// function on every simplex. Index `i` of the result corresponds to
/// simplex id `i`.
pub fn approximate_scalar(grid: &ParamGrid, mut f: impl FnMut(&[f64]) -> f64) -> Vec<LinearFn> {
    let mut cache: HashMap<Vec<i64>, f64> = HashMap::new();
    grid.simplices()
        .iter()
        .map(|s| {
            let values: Vec<f64> = s
                .vertices
                .iter()
                .map(|v| *cache.entry(vertex_key(grid, v)).or_insert_with(|| f(v)))
                .collect();
            interpolate_simplex(s, &values).expect("grid simplices are non-degenerate")
        })
        .collect()
}

/// Evaluates the vector-valued closure `f` **once** per distinct grid
/// vertex and interpolates every metric's linear function on every
/// simplex. Returns one `Vec<LinearFn>` per metric, indexed by simplex id
/// — numerically identical to running [`approximate_scalar`] per metric,
/// with `num_metrics`× fewer closure evaluations.
pub fn approximate_vector(
    grid: &ParamGrid,
    num_metrics: usize,
    mut f: impl FnMut(&[f64]) -> CostVec,
) -> Vec<Vec<LinearFn>> {
    // Vertex costs live in a flat store; the map resolves a vertex key to
    // its store index exactly once per (simplex, vertex) — metrics then
    // read the stored vector by index, so hashing does not scale with the
    // metric count.
    let mut ids: HashMap<Vec<i64>, usize> = HashMap::new();
    let mut store: Vec<CostVec> = Vec::new();
    let mut metrics: Vec<Vec<LinearFn>> = (0..num_metrics)
        .map(|_| Vec::with_capacity(grid.num_simplices()))
        .collect();
    let mut values = vec![0.0; grid.dim() + 1];
    let mut vertex_ids = vec![0usize; grid.dim() + 1];
    for s in grid.simplices() {
        for (slot, v) in vertex_ids.iter_mut().zip(&s.vertices) {
            *slot = *ids.entry(vertex_key(grid, v)).or_insert_with(|| {
                let c = f(v);
                debug_assert_eq!(c.len(), num_metrics);
                store.push(c);
                store.len() - 1
            });
        }
        for m in 0..num_metrics {
            for (slot, &id) in values.iter_mut().zip(&vertex_ids) {
                *slot = store[id][m];
            }
            metrics[m]
                .push(interpolate_simplex(s, &values).expect("grid simplices are non-degenerate"));
        }
    }
    metrics
}

/// Builds a general [`PwlFn`] approximating `f` on the grid. Piece regions
/// are the grid's interned simplex polytopes.
pub fn pwl_from_closure(grid: &ParamGrid, f: impl FnMut(&[f64]) -> f64) -> PwlFn {
    let fns = approximate_scalar(grid, f);
    PwlFn::new(grid.dim(), pieces_on_grid(grid, fns))
}

/// Pairs per-simplex linear functions with the grid's interned simplex
/// regions.
fn pieces_on_grid(grid: &ParamGrid, fns: Vec<LinearFn>) -> Vec<LinearPiece> {
    fns.into_iter()
        .enumerate()
        .map(|(s, lin)| LinearPiece {
            region: Arc::clone(grid.simplex_poly(s)),
            f: lin,
        })
        .collect()
}

/// Builds a [`MultiCostFn`] approximating the vector-valued closure `f`
/// (which must return `num_metrics` values) on the grid, evaluating `f`
/// once per distinct vertex for all metrics.
pub fn multi_from_closure(
    grid: &ParamGrid,
    num_metrics: usize,
    f: impl Fn(&[f64]) -> CostVec,
) -> MultiCostFn {
    let metrics = approximate_vector(grid, num_metrics, f)
        .into_iter()
        .map(|fns| PwlFn::new(grid.dim(), pieces_on_grid(grid, fns)))
        .collect();
    MultiCostFn::new(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_geometry::grid::lattice;

    #[test]
    fn affine_closures_are_exact_everywhere() {
        let grid = ParamGrid::new(&[0.0, 0.0], &[1.0, 1.0], 3).unwrap();
        let f = pwl_from_closure(&grid, |x| 2.0 * x[0] - 3.0 * x[1] + 1.0);
        for p in lattice(&[0.0, 0.0], &[1.0, 1.0], 9) {
            let expect = 2.0 * p[0] - 3.0 * p[1] + 1.0;
            let got = f.eval(&p).unwrap();
            assert!((got - expect).abs() < 1e-9, "at {p:?}: {got} vs {expect}");
        }
    }

    #[test]
    fn product_is_exact_at_vertices() {
        let grid = ParamGrid::new(&[0.0, 0.0], &[1.0, 1.0], 2).unwrap();
        let f = pwl_from_closure(&grid, |x| x[0] * x[1]);
        for v in grid.vertex_points() {
            let got = f.eval(&v).unwrap();
            assert!(
                (got - v[0] * v[1]).abs() < 1e-9,
                "vertex {v:?}: {got} vs {}",
                v[0] * v[1]
            );
        }
    }

    #[test]
    fn refinement_reduces_error() {
        let target = |x: &[f64]| x[0] * x[0];
        let err = |res: usize| {
            let grid = ParamGrid::new(&[0.0], &[1.0], res).unwrap();
            let f = pwl_from_closure(&grid, target);
            lattice(&[0.0], &[1.0], 101)
                .iter()
                .map(|p| (f.eval(p).unwrap() - target(p)).abs())
                .fold(0.0f64, f64::max)
        };
        let coarse = err(2);
        let fine = err(8);
        assert!(
            fine < coarse / 4.0,
            "expected ~quadratic error decay: {coarse} -> {fine}"
        );
    }

    #[test]
    fn multi_closure_builds_all_metrics() {
        let grid = ParamGrid::new(&[0.0], &[1.0], 2).unwrap();
        let mc = multi_from_closure(&grid, 2, |x| vec![x[0], 1.0 - x[0]]);
        assert_eq!(mc.num_metrics(), 2);
        let v = mc.eval(&[0.25]).unwrap();
        assert!((v[0] - 0.25).abs() < 1e-9 && (v[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn interpolation_matches_vertex_values() {
        let grid = ParamGrid::new(&[0.0, 0.0], &[2.0, 2.0], 2).unwrap();
        let s = grid.simplex(3);
        let values: Vec<f64> = s.vertices.iter().map(|v| v[0] * 7.0 + v[1]).collect();
        let lin = interpolate_simplex(s, &values).unwrap();
        for (v, val) in s.vertices.iter().zip(&values) {
            assert!((lin.eval(v) - val).abs() < 1e-9);
        }
    }
}
