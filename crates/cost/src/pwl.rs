//! General piecewise-linear functions over polytope pieces.

use crate::LinearFn;
use mpq_geometry::{Halfspace, HalfspaceKind, Polytope};
use mpq_lp::{FastPathSite, LpCtx};
use std::sync::Arc;

/// One linear piece: a linear function together with the convex polytope on
/// which it applies (the `reg`/`w`/`b` triple of Figure 9 in the paper).
///
/// The region sits behind an `Arc`: pieces lifted on a shared grid all
/// point at the grid's interned simplex polytopes, and the piece algebra
/// keeps that sharing alive — intersecting two pieces whose regions are
/// the *same* `Arc` (the dominant case for aligned decompositions) just
/// bumps the reference count instead of cloning constraint lists.
#[derive(Debug, Clone)]
pub struct LinearPiece {
    /// The convex region on which `f` applies.
    pub region: Arc<Polytope>,
    /// The linear function on that region.
    pub f: LinearFn,
}

/// The intersection of two piece regions, preserving `Arc` sharing:
/// identical `Arc`s short-circuit to a reference-count bump (content-wise
/// exactly what [`Polytope::intersect_dedup`] would return, since every
/// constraint of the other operand is a duplicate).
fn shared_intersect(a: &Arc<Polytope>, b: &Arc<Polytope>) -> Arc<Polytope> {
    if Arc::ptr_eq(a, b) {
        Arc::clone(a)
    } else {
        Arc::new(a.intersect_dedup(b))
    }
}

/// A piecewise-linear function: linear on convex polytopes whose interiors
/// partition its domain.
///
/// Pieces may describe discontinuous functions (the paper explicitly allows
/// discontinuities between linear regions); evaluation on a shared boundary
/// picks the first containing piece.
#[derive(Debug, Clone)]
pub struct PwlFn {
    dim: usize,
    pieces: Vec<LinearPiece>,
}

impl PwlFn {
    /// A function made of explicit pieces.
    pub fn new(dim: usize, pieces: Vec<LinearPiece>) -> Self {
        debug_assert!(pieces
            .iter()
            .all(|p| p.region.dim() == dim && p.f.dim() == dim));
        Self { dim, pieces }
    }

    /// A single-piece (linear) function on `region`.
    pub fn from_linear(region: Polytope, f: LinearFn) -> Self {
        let dim = region.dim();
        Self::new(
            dim,
            vec![LinearPiece {
                region: Arc::new(region),
                f,
            }],
        )
    }

    /// The constant function `c` on `region`.
    pub fn constant(region: Polytope, c: f64) -> Self {
        let dim = region.dim();
        Self::from_linear(region, LinearFn::constant(dim, c))
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The linear pieces.
    pub fn pieces(&self) -> &[LinearPiece] {
        &self.pieces
    }

    /// Evaluates at `x`: the value of the first piece whose region contains
    /// `x`, or `None` outside the domain.
    pub fn eval(&self, x: &[f64]) -> Option<f64> {
        self.pieces
            .iter()
            .find(|p| p.region.contains_point(x))
            .map(|p| p.f.eval(x))
    }

    /// Scales values by `k ≥ 0` (piece regions shared, not cloned).
    pub fn scale(&self, k: f64) -> PwlFn {
        debug_assert!(k >= 0.0, "scaling by a negative factor breaks dominance");
        PwlFn {
            dim: self.dim,
            pieces: self
                .pieces
                .iter()
                .map(|p| LinearPiece {
                    region: Arc::clone(&p.region),
                    f: p.f.scale(k),
                })
                .collect(),
        }
    }

    /// Adds a constant offset (piece regions shared, not cloned).
    pub fn add_const(&self, c: f64) -> PwlFn {
        PwlFn {
            dim: self.dim,
            pieces: self
                .pieces
                .iter()
                .map(|p| LinearPiece {
                    region: Arc::clone(&p.region),
                    f: p.f.add_const(c),
                })
                .collect(),
        }
    }

    /// Pointwise sum (the `AccumulateCost` pattern of Algorithm 3): the
    /// parameter space is re-partitioned into pairwise intersections of the
    /// operand regions; weight vectors and base costs add on each non-empty
    /// intersection (Figure 11 of the paper).
    pub fn add(&self, other: &PwlFn, ctx: &LpCtx) -> PwlFn {
        self.combine(other, ctx, |r, f1, f2| {
            vec![LinearPiece {
                region: r,
                f: f1.add(f2),
            }]
        })
    }

    /// Pointwise maximum. Within an intersection region the winner can
    /// change across the hyperplane `f₁(x) = f₂(x)`, so pieces are split.
    /// Used to accumulate execution time of sub-plans that run in parallel
    /// (the paper's §3 example: "the execution time of a plan equals the
    /// maximum over the execution times of its sub-plans").
    pub fn max(&self, other: &PwlFn, ctx: &LpCtx) -> PwlFn {
        self.extremum(other, ctx, true)
    }

    /// Pointwise minimum (see [`PwlFn::max`]).
    pub fn min(&self, other: &PwlFn, ctx: &LpCtx) -> PwlFn {
        self.extremum(other, ctx, false)
    }

    fn extremum(&self, other: &PwlFn, ctx: &LpCtx, want_max: bool) -> PwlFn {
        self.combine(other, ctx, |r, f1, f2| {
            // d = f1 − f2; the set {d ≥ 0} within r takes f1 for max / f2
            // for min.
            let d = f1.sub(f2);
            let (upper, lower) = if want_max { (f1, f2) } else { (f2, f1) };
            let neg: Vec<f64> = d.w.iter().map(|v| -v).collect();
            match Halfspace::new(neg, d.b) {
                // d ≥ 0 everywhere degenerate (w = 0): constant sign.
                HalfspaceKind::AlwaysTrue => vec![LinearPiece {
                    region: r,
                    f: upper.clone(),
                }],
                HalfspaceKind::AlwaysFalse => vec![LinearPiece {
                    region: r,
                    f: lower.clone(),
                }],
                HalfspaceKind::Proper(h) => {
                    let mut out = Vec::with_capacity(2);
                    if !r.is_empty_with_fastpath(
                        ctx,
                        std::slice::from_ref(&h),
                        FastPathSite::PieceAlgebra,
                    ) {
                        out.push(LinearPiece {
                            region: Arc::new(r.with(h.clone())),
                            f: upper.clone(),
                        });
                    }
                    let hc = h.complement();
                    if !r.is_empty_with_fastpath(
                        ctx,
                        std::slice::from_ref(&hc),
                        FastPathSite::PieceAlgebra,
                    ) {
                        out.push(LinearPiece {
                            region: Arc::new(r.with(hc)),
                            f: lower.clone(),
                        });
                    }
                    out
                }
            }
        })
    }

    fn combine(
        &self,
        other: &PwlFn,
        ctx: &LpCtx,
        mut make: impl FnMut(Arc<Polytope>, &LinearFn, &LinearFn) -> Vec<LinearPiece>,
    ) -> PwlFn {
        debug_assert_eq!(self.dim, other.dim);
        let mut pieces = Vec::with_capacity(self.pieces.len().max(other.pieces.len()));
        for p1 in &self.pieces {
            for p2 in &other.pieces {
                // Borrow-based emptiness (with the exact 1-D fast path)
                // before materialising: aligned decompositions kill almost
                // every cross pair here, without LPs or clones — and
                // interned (`Arc`-identical) regions intersect for free.
                if !p1
                    .region
                    .intersection_is_empty(ctx, &p2.region, FastPathSite::PieceAlgebra)
                {
                    pieces.extend(make(shared_intersect(&p1.region, &p2.region), &p1.f, &p2.f));
                }
            }
        }
        PwlFn {
            dim: self.dim,
            pieces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(lo: f64, hi: f64) -> Polytope {
        Polytope::from_box(&[lo], &[hi])
    }

    /// A 1-D PWL function with pieces on consecutive intervals.
    fn step_fn(breaks: &[f64], fns: &[LinearFn]) -> PwlFn {
        assert_eq!(breaks.len(), fns.len() + 1);
        let pieces = fns
            .iter()
            .enumerate()
            .map(|(i, f)| LinearPiece {
                region: Arc::new(interval(breaks[i], breaks[i + 1])),
                f: f.clone(),
            })
            .collect();
        PwlFn::new(1, pieces)
    }

    #[test]
    fn eval_picks_containing_piece() {
        let f = step_fn(
            &[0.0, 0.5, 1.0],
            &[LinearFn::new(vec![1.0], 0.0), LinearFn::new(vec![0.0], 2.0)],
        );
        assert_eq!(f.eval(&[0.25]), Some(0.25));
        assert_eq!(f.eval(&[0.75]), Some(2.0));
        assert_eq!(f.eval(&[2.0]), None);
    }

    #[test]
    fn add_intersects_pieces() {
        let ctx = LpCtx::new();
        let f = step_fn(
            &[0.0, 0.5, 1.0],
            &[LinearFn::new(vec![1.0], 0.0), LinearFn::new(vec![1.0], 1.0)],
        );
        let g = PwlFn::from_linear(interval(0.0, 1.0), LinearFn::new(vec![2.0], 0.5));
        let s = f.add(&g, &ctx);
        for x in [0.1, 0.3, 0.6, 0.9] {
            let expect = f.eval(&[x]).unwrap() + g.eval(&[x]).unwrap();
            assert!((s.eval(&[x]).unwrap() - expect).abs() < 1e-9, "at {x}");
        }
    }

    #[test]
    fn max_splits_at_crossing() {
        let ctx = LpCtx::new();
        // f = x and g = 1 − x cross at 0.5.
        let f = PwlFn::from_linear(interval(0.0, 1.0), LinearFn::new(vec![1.0], 0.0));
        let g = PwlFn::from_linear(interval(0.0, 1.0), LinearFn::new(vec![-1.0], 1.0));
        let m = f.max(&g, &ctx);
        assert_eq!(m.pieces().len(), 2);
        for x in [0.1f64, 0.4, 0.6, 0.9] {
            let expect = x.max(1.0 - x);
            assert!((m.eval(&[x]).unwrap() - expect).abs() < 1e-9, "at {x}");
        }
        let n = f.min(&g, &ctx);
        for x in [0.1f64, 0.4, 0.6, 0.9] {
            let expect = x.min(1.0 - x);
            assert!((n.eval(&[x]).unwrap() - expect).abs() < 1e-9, "at {x}");
        }
    }

    #[test]
    fn max_of_parallel_functions_does_not_split() {
        let ctx = LpCtx::new();
        let f = PwlFn::from_linear(interval(0.0, 1.0), LinearFn::new(vec![1.0], 0.0));
        let g = PwlFn::from_linear(interval(0.0, 1.0), LinearFn::new(vec![1.0], 1.0));
        let m = f.max(&g, &ctx);
        assert_eq!(m.pieces().len(), 1);
        assert!((m.eval(&[0.5]).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn scale_and_const_preserve_regions() {
        let f = step_fn(
            &[0.0, 0.5, 1.0],
            &[LinearFn::new(vec![1.0], 0.0), LinearFn::new(vec![0.0], 2.0)],
        );
        let g = f.scale(3.0).add_const(1.0);
        assert_eq!(g.pieces().len(), 2);
        assert!((g.eval(&[0.25]).unwrap() - 1.75).abs() < 1e-9);
        assert!((g.eval(&[0.75]).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn two_dimensional_add() {
        let ctx = LpCtx::new();
        let square = Polytope::from_box(&[0.0, 0.0], &[1.0, 1.0]);
        let f = PwlFn::from_linear(square.clone(), LinearFn::new(vec![1.0, 2.0], 0.0));
        let g = PwlFn::from_linear(square, LinearFn::new(vec![-1.0, 1.0], 3.0));
        let s = f.add(&g, &ctx);
        assert!((s.eval(&[0.5, 0.5]).unwrap() - (1.5 + 3.0)).abs() < 1e-9);
    }
}
