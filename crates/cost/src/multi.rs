//! Vector-valued (multi-objective) PWL cost functions and the dominance
//! region computation of Algorithm 3.

use crate::{CostVec, PwlFn};
use mpq_geometry::{Halfspace, HalfspaceKind, Polytope};
use mpq_lp::{FastPathSite, LpCtx};

/// A multi-objective PWL cost function: one [`PwlFn`] per cost metric
/// (the `comps` relationship of Figure 9 in the paper).
#[derive(Debug, Clone)]
pub struct MultiCostFn {
    metrics: Vec<PwlFn>,
}

impl MultiCostFn {
    /// Builds a cost function from per-metric components.
    ///
    /// # Panics
    /// Panics if `metrics` is empty or the components disagree on dimension.
    pub fn new(metrics: Vec<PwlFn>) -> Self {
        assert!(!metrics.is_empty(), "at least one cost metric is required");
        let dim = metrics[0].dim();
        assert!(metrics.iter().all(|m| m.dim() == dim));
        Self { metrics }
    }

    /// Number of cost metrics.
    pub fn num_metrics(&self) -> usize {
        self.metrics.len()
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.metrics[0].dim()
    }

    /// Per-metric components.
    pub fn metrics(&self) -> &[PwlFn] {
        &self.metrics
    }

    /// Evaluates all metrics at `x`; `None` outside some component's domain.
    pub fn eval(&self, x: &[f64]) -> Option<CostVec> {
        self.metrics.iter().map(|m| m.eval(x)).collect()
    }

    /// Metric-wise sum (cost accumulation for sequential execution).
    pub fn add(&self, other: &MultiCostFn, ctx: &LpCtx) -> MultiCostFn {
        debug_assert_eq!(self.num_metrics(), other.num_metrics());
        MultiCostFn {
            metrics: self
                .metrics
                .iter()
                .zip(&other.metrics)
                .map(|(a, b)| a.add(b, ctx))
                .collect(),
        }
    }

    /// The dominance region `Dom(self, other)`: a set of convex polytopes
    /// covering exactly the points where `self` has at-most-equal cost
    /// according to **every** metric (Algorithm 3, function `Dom`).
    ///
    /// Per metric, each pair of linear pieces contributes the polytope
    /// `reg₁ ∩ reg₂ ∩ {(w₁ − w₂) · x ≤ b₂ − b₁}`; the per-metric polytope
    /// sets are then intersected combinatorially (line 56 of Algorithm 3).
    /// Empty-interior members are dropped throughout.
    ///
    /// Emptiness pruning is borrow-based (constraints are staged into the
    /// LP directly, nothing is materialised for pairs that die) and takes
    /// the exact one-dimensional fast path
    /// ([`Polytope::intersection_is_empty`]) first, so grid-aligned piece
    /// decompositions — where almost every cross pair is empty — prune
    /// without solving LPs.
    pub fn dominance_regions(&self, other: &MultiCostFn, ctx: &LpCtx) -> Vec<Polytope> {
        self.dominance_regions_banded(other, 1.0, ctx)
    }

    /// [`MultiCostFn::dominance_regions`] under a multiplicative `(1+ε)`
    /// band: the polytopes covering exactly the points where
    /// `self ≤ band · other` on **every** metric. Each piece pair's
    /// halfspace comes from the banded difference `f₁ − band · f₂`; with
    /// `band == 1.0` the scaling is an IEEE identity, so the exact
    /// computation is the ε = 0 special case bit for bit.
    pub fn dominance_regions_banded(
        &self,
        other: &MultiCostFn,
        band: f64,
        ctx: &LpCtx,
    ) -> Vec<Polytope> {
        debug_assert_eq!(self.num_metrics(), other.num_metrics());
        let dim = self.dim();
        let mut per_metric: Vec<Vec<Polytope>> = Vec::with_capacity(self.num_metrics());
        for (mine, theirs) in self.metrics.iter().zip(&other.metrics) {
            let mut polys = Vec::new();
            for p1 in mine.pieces() {
                for p2 in theirs.pieces() {
                    if p1
                        .region
                        .intersection_is_empty(ctx, &p2.region, FastPathSite::PieceAlgebra)
                    {
                        continue;
                    }
                    // `band == 1.0` takes the exact difference — literally
                    // the pre-ε code path, so ε = 0 stays bit-identical.
                    let d = if band == 1.0 {
                        p1.f.sub(&p2.f)
                    } else {
                        p1.f.sub(&p2.f.scale(band))
                    };
                    match Halfspace::new(d.w.clone(), -d.b) {
                        HalfspaceKind::AlwaysTrue => {
                            polys.push(p1.region.intersect_dedup(&p2.region))
                        }
                        HalfspaceKind::AlwaysFalse => {}
                        HalfspaceKind::Proper(h) => {
                            let r = p1.region.intersect_dedup(&p2.region);
                            if !r.is_empty_with_fastpath(
                                ctx,
                                std::slice::from_ref(&h),
                                FastPathSite::PieceAlgebra,
                            ) {
                                polys.push(r.with(h));
                            }
                        }
                    }
                }
            }
            if polys.is_empty() {
                // Some metric is never at-most-equal: no dominance anywhere.
                return Vec::new();
            }
            per_metric.push(polys);
        }
        // Combinatorial intersection across metrics (Algorithm 3, line 56).
        let mut acc: Vec<Polytope> = vec![Polytope::full(dim)];
        for polys in &per_metric {
            let mut next = Vec::with_capacity(acc.len() * polys.len());
            for a in &acc {
                for p in polys {
                    if !a.intersection_is_empty(ctx, p, FastPathSite::PieceAlgebra) {
                        next.push(a.intersect_dedup(p));
                    }
                }
            }
            if next.is_empty() {
                return Vec::new();
            }
            acc = next;
        }
        acc.into_iter().map(|p| p.remove_redundant(ctx)).collect()
    }

    /// True iff `self` dominates `other` at the point `x` (both defined).
    pub fn dominates_at(&self, other: &MultiCostFn, x: &[f64], tol: f64) -> bool {
        match (self.eval(x), other.eval(x)) {
            (Some(a), Some(b)) => crate::dominates(&a, &b, tol),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearFn, LinearPiece};

    fn interval(lo: f64, hi: f64) -> Polytope {
        Polytope::from_box(&[lo], &[hi])
    }

    fn lin(region: Polytope, w: Vec<f64>, b: f64) -> PwlFn {
        PwlFn::from_linear(region, LinearFn::new(w, b))
    }

    /// Example 2 of the paper: c(p1) = (2, 3), c(p2) = (0.5 + σ, 2) on
    /// σ ∈ [0, 1].
    fn example2() -> (MultiCostFn, MultiCostFn) {
        let x = interval(0.0, 1.0);
        let p1 = MultiCostFn::new(vec![
            lin(x.clone(), vec![0.0], 2.0),
            lin(x.clone(), vec![0.0], 3.0),
        ]);
        let p2 = MultiCostFn::new(vec![lin(x.clone(), vec![1.0], 0.5), lin(x, vec![0.0], 2.0)]);
        (p1, p2)
    }

    #[test]
    fn example2_dominance_matches_paper() {
        let ctx = LpCtx::new();
        let (p1, p2) = example2();
        // p2 dominates p1 exactly where 0.5 + σ ≤ 2 (always) and 2 ≤ 3
        // (always): the entire parameter space... no — dominance requires
        // *both* metrics at most equal: time 0.5+σ ≤ 2 ⇔ σ ≤ 1.5, true on
        // [0,1]; fees 2 ≤ 3 always. So Dom(p2, p1) = [0, 1].
        let dom = p2.dominance_regions(&p1, &ctx);
        assert!(mpq_geometry::union_covers(&ctx, &dom, &interval(0.0, 1.0)));
        // p1 dominates p2 where 2 ≤ 0.5 + σ ⇔ σ ≥ 1.5: nowhere on [0,1],
        // and 3 ≤ 2 never holds, so Dom(p1, p2) is empty.
        let dom_rev = p1.dominance_regions(&p2, &ctx);
        assert!(dom_rev.is_empty());
    }

    #[test]
    fn dominance_region_halfline() {
        let ctx = LpCtx::new();
        let x = interval(0.0, 1.0);
        // time: a = σ vs b = 0.25 → a better for σ ≤ 0.25;
        // fees: a = 1 vs b = 2 → a always better.
        let a = MultiCostFn::new(vec![
            lin(x.clone(), vec![1.0], 0.0),
            lin(x.clone(), vec![0.0], 1.0),
        ]);
        let b = MultiCostFn::new(vec![
            lin(x.clone(), vec![0.0], 0.25),
            lin(x, vec![0.0], 2.0),
        ]);
        let dom = a.dominance_regions(&b, &ctx);
        assert_eq!(dom.len(), 1);
        let (lo, hi) = dom[0].bounding_box(&ctx).unwrap();
        assert!(lo[0].abs() < 1e-6 && (hi[0] - 0.25).abs() < 1e-6);
        // Pointwise agreement.
        assert!(a.dominates_at(&b, &[0.1], 1e-9));
        assert!(!a.dominates_at(&b, &[0.5], 1e-9));
    }

    #[test]
    fn dominance_with_pwl_pieces() {
        let ctx = LpCtx::new();
        // f: pieces σ on [0, .5], 1 − σ on [.5, 1] (tent); g: constant 0.4.
        let f = MultiCostFn::new(vec![PwlFn::new(
            1,
            vec![
                LinearPiece {
                    region: std::sync::Arc::new(interval(0.0, 0.5)),
                    f: LinearFn::new(vec![1.0], 0.0),
                },
                LinearPiece {
                    region: std::sync::Arc::new(interval(0.5, 1.0)),
                    f: LinearFn::new(vec![-1.0], 1.0),
                },
            ],
        )]);
        let g = MultiCostFn::new(vec![lin(interval(0.0, 1.0), vec![0.0], 0.4)]);
        // f ≤ g on [0, 0.4] ∪ [0.6, 1].
        let dom = f.dominance_regions(&g, &ctx);
        let expect_left = interval(0.0, 0.4);
        let expect_right = interval(0.6, 1.0);
        assert!(mpq_geometry::union_covers(&ctx, &dom, &expect_left));
        assert!(mpq_geometry::union_covers(&ctx, &dom, &expect_right));
        // And nothing in the middle.
        for p in &dom {
            assert!(!p.contains_point(&[0.5]));
        }
    }

    #[test]
    fn banded_dominance_widens_region() {
        let ctx = LpCtx::new();
        let x = interval(0.0, 1.0);
        // time: a = σ vs b = 0.25 → exactly a ≤ b on [0, 0.25], banded
        // (ε = 0.2) on [0, 0.3]; fees: a = 1 vs b = 2 → always.
        let a = MultiCostFn::new(vec![
            lin(x.clone(), vec![1.0], 0.0),
            lin(x.clone(), vec![0.0], 1.0),
        ]);
        let b = MultiCostFn::new(vec![
            lin(x.clone(), vec![0.0], 0.25),
            lin(x, vec![0.0], 2.0),
        ]);
        let banded = a.dominance_regions_banded(&b, 1.2, &ctx);
        assert!(mpq_geometry::union_covers(
            &ctx,
            &banded,
            &interval(0.0, 0.3)
        ));
        for p in &banded {
            assert!(!p.contains_point(&[0.35]));
        }
        // band == 1.0 reproduces the exact region.
        let exact = a.dominance_regions(&b, &ctx);
        let unit = a.dominance_regions_banded(&b, 1.0, &ctx);
        assert_eq!(exact.len(), unit.len());
    }

    #[test]
    fn add_accumulates_metric_wise() {
        let ctx = LpCtx::new();
        let x = interval(0.0, 1.0);
        let a = MultiCostFn::new(vec![
            lin(x.clone(), vec![1.0], 0.0),
            lin(x.clone(), vec![0.0], 1.0),
        ]);
        let b = MultiCostFn::new(vec![lin(x.clone(), vec![0.0], 2.0), lin(x, vec![2.0], 0.0)]);
        let s = a.add(&b, &ctx);
        let v = s.eval(&[0.5]).unwrap();
        assert!((v[0] - 2.5).abs() < 1e-9);
        assert!((v[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_dim_dominance_region_is_box_corner() {
        // Figure 5 of the paper: plan 1 has cost (x1, x2), plan 2 has cost
        // (1, 1): plan 1 dominates exactly on [0,1]².
        let ctx = LpCtx::new();
        let square = Polytope::from_box(&[0.0, 0.0], &[2.0, 2.0]);
        let p1 = MultiCostFn::new(vec![
            lin(square.clone(), vec![1.0, 0.0], 0.0),
            lin(square.clone(), vec![0.0, 1.0], 0.0),
        ]);
        let p2 = MultiCostFn::new(vec![
            lin(square.clone(), vec![0.0, 0.0], 1.0),
            lin(square, vec![0.0, 0.0], 1.0),
        ]);
        let dom = p1.dominance_regions(&p2, &ctx);
        let unit = Polytope::from_box(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(mpq_geometry::union_covers(&ctx, &dom, &unit));
        for p in &dom {
            assert!(unit.contains_polytope(&ctx, p));
        }
    }
}
