//! The cross-query cost-lifting cache.
//!
//! Lifting an operator's cost closure onto the optimizer's representation
//! — grid interpolation plus one linear solve per simplex per metric — is
//! pure in the operator's cost *shape* (its numeric inputs), so queries of
//! a batch that share tables recompute identical liftings today.
//! [`LiftedCostCache`] memoizes lifted costs behind `Arc`s keyed on a
//! caller-provided canonical shape key (`mpq_cloud::shape::OpShape` in the
//! optimizer session): the first query lifts, every later query sharing
//! the shape clones an `Arc`.
//!
//! The cache is generic over both key and value so the grid backend
//! (`GridCost`), the general PWL backend (`MultiCostFn`) and the sampled
//! backend share one implementation — whatever `MpqSpace::Cost` is in a
//! session.
//!
//! # Determinism
//!
//! A miss **reserves** its slot while holding the map lock (counting the
//! miss and running the eviction policy right there), then builds the
//! value **outside** the lock in a per-key once-cell: every key is lifted
//! exactly once per residency no matter how many worker threads race on
//! it, and racers that find an in-flight reservation count a hit and wait
//! on the cell instead of re-building. Because a lift is a pure function
//! of its key (the soundness contract of the shape type), cached results
//! are bit-identical to per-query lifting — and for an *unbounded* cache
//! the hit/miss totals are deterministic for every thread count and batch
//! schedule: `misses` always equals the number of distinct shapes seen,
//! `hits` the remaining lookups. Keeping the build outside the map lock
//! means a slow lift only blocks threads that need *that* shape; lookups
//! for other shapes proceed (and may even be issued re-entrantly from
//! inside a builder).
//!
//! # Bounded operation (eviction)
//!
//! A batch run lifts a bounded set of shapes, but a long-lived service
//! would grow the map forever. [`LiftedCostCache::with_capacity`] bounds
//! the cache to a fixed number of entries with a **second-chance (CLOCK)**
//! policy over insertion order: every resident entry carries a reference
//! bit, set on each hit; on insertion into a full cache a clock hand
//! sweeps the slots in insertion order, clearing set bits and evicting the
//! first entry whose bit is already clear. The policy is a pure function
//! of the *access sequence* — no wall-clock time, no hash-iteration order
//! — so a fixed sequence of lookups always caches, hits and evicts
//! identically. Evicting never changes *values*: a re-lifted shape
//! reproduces the evicted value bit for bit (lifts are pure), so bounded
//! and unbounded sessions return identical results and differ only in
//! hit/miss/eviction counters and peak memory.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

use mpq_obs::CacheCounters;

/// Hit/miss/eviction counts of a [`LiftedCostCache`] — a plain-value
/// view of the cache's live [`CacheCounters`] (the one cache-stat shape
/// every cache in the workspace reports through).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to lift (one per distinct shape *residency* — a
    /// shape re-admitted after eviction misses again).
    pub misses: u64,
    /// Entries evicted by the second-chance policy (0 for unbounded
    /// caches).
    pub evictions: u64,
}

impl CacheStats {
    /// Snapshots live counters into a plain value.
    pub fn of(counters: &CacheCounters) -> Self {
        Self {
            hits: counters.hits(),
            misses: counters.misses(),
            evictions: counters.evictions(),
        }
    }
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-key once-cell: reserved under the ring lock by the missing
/// thread, filled (or poisoned, if the builder unwinds) after the build
/// completes outside the lock. Racers that find the reservation wait on
/// `ready`.
#[derive(Debug)]
struct LiftCell<V> {
    state: Mutex<CellState<V>>,
    ready: Condvar,
}

#[derive(Debug)]
enum CellState<V> {
    Building,
    Ready(Arc<V>),
    Poisoned,
}

impl<V> LiftCell<V> {
    fn new() -> Self {
        Self {
            state: Mutex::new(CellState::Building),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, value: Arc<V>) {
        *self.state.lock().expect("lift cell poisoned") = CellState::Ready(value);
        self.ready.notify_all();
    }

    fn poison(&self) {
        // Waiters must not hang on a builder that unwound; flip them to a
        // panic of their own instead.
        if let Ok(mut state) = self.state.lock() {
            *state = CellState::Poisoned;
        }
        self.ready.notify_all();
    }

    fn wait(&self) -> Arc<V> {
        let mut state = self.state.lock().expect("lift cell poisoned");
        loop {
            match &*state {
                CellState::Ready(v) => return Arc::clone(v),
                CellState::Poisoned => panic!("lift builder panicked"),
                CellState::Building => {
                    state = self.ready.wait(state).expect("lift cell poisoned");
                }
            }
        }
    }
}

/// Poisons the reserved cell if the builder unwinds, so waiting threads
/// panic instead of blocking forever. Disarmed with `mem::forget` once
/// the value is built.
struct PoisonGuard<'a, V> {
    cell: &'a LiftCell<V>,
}

impl<V> Drop for PoisonGuard<'_, V> {
    fn drop(&mut self) {
        self.cell.poison();
    }
}

/// One resident entry of the CLOCK ring: the key (to unmap on eviction),
/// the shared once-cell, and the second-chance reference bit.
#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    cell: Arc<LiftCell<V>>,
    referenced: bool,
}

/// The lock-protected state: the key → ring-slot index map, the ring
/// itself (insertion order), and the clock hand.
#[derive(Debug)]
struct Ring<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    hand: usize,
}

/// Memoizes lifted operator costs (`K` = canonical cost shape, `V` = the
/// space's cost representation) behind `Arc`-shared immutable values,
/// optionally bounded by a deterministic second-chance eviction policy
/// (see the module docs).
#[derive(Debug)]
pub struct LiftedCostCache<K, V> {
    ring: Mutex<Ring<K, V>>,
    /// `None` = unbounded (batch mode); `Some(n)` = at most `n` resident
    /// entries (service mode).
    capacity: Option<usize>,
    counters: Arc<CacheCounters>,
}

impl<K, V> Default for LiftedCostCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> LiftedCostCache<K, V> {
    /// An empty, unbounded cache (the batch-run default: a batch lifts a
    /// bounded set of shapes).
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// An empty cache holding at most `capacity` entries (`None` =
    /// unbounded). A capacity of `Some(0)` degenerates to a pass-through:
    /// every lookup misses and nothing is retained.
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        Self {
            ring: Mutex::new(Ring {
                map: HashMap::new(),
                slots: Vec::new(),
                hand: 0,
            }),
            capacity,
            counters: Arc::new(CacheCounters::new()),
        }
    }

    /// The entry bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Current hit/miss/eviction counters, as a plain value.
    pub fn stats(&self) -> CacheStats {
        CacheStats::of(&self.counters)
    }

    /// The live counters, for registration in an observability registry
    /// (the registry scrapes the same atomic cells [`stats`](Self::stats)
    /// reads, so the two can never disagree).
    pub fn counters(&self) -> Arc<CacheCounters> {
        Arc::clone(&self.counters)
    }
}

impl<K: Eq + Hash + Clone, V> LiftedCostCache<K, V> {
    /// The lifted cost for `key`, building it with `lift` on first sight
    /// (or on re-admission after eviction).
    ///
    /// The miss is counted — and the eviction policy runs — while the
    /// reservation is made under the ring lock, so counters and evictions
    /// stay a pure function of the access sequence; `lift` itself runs
    /// **outside** the lock in the reserved once-cell. Racing lookups for
    /// the same key count hits and wait on the cell; lookups for other
    /// keys (including re-entrant ones from inside a builder) proceed
    /// unblocked. If the builder unwinds, the cell is poisoned and every
    /// waiter (and later hit on the residency) panics rather than hangs.
    pub fn get_or_lift(&self, key: &K, lift: impl FnOnce() -> V) -> Arc<V> {
        let cell = {
            let mut ring = self.ring.lock().expect("lift cache poisoned");
            if let Some(&slot) = ring.map.get(key) {
                self.counters.hit();
                ring.slots[slot].referenced = true;
                let cell = Arc::clone(&ring.slots[slot].cell);
                drop(ring);
                return cell.wait();
            }
            self.counters.miss();
            let cell = Arc::new(LiftCell::new());
            match self.capacity {
                Some(0) => {} // pass-through: never resident
                Some(cap) if ring.slots.len() >= cap => {
                    // Second chance: sweep in insertion order from the
                    // hand, clearing reference bits until an unreferenced
                    // victim turns up (bounded: after one full sweep every
                    // bit is clear). Evicting an in-flight cell is safe:
                    // its builder and waiters hold their own `Arc`s.
                    let victim = loop {
                        let i = ring.hand;
                        ring.hand = (ring.hand + 1) % ring.slots.len();
                        if ring.slots[i].referenced {
                            ring.slots[i].referenced = false;
                        } else {
                            break i;
                        }
                    };
                    self.counters.evict();
                    let old = std::mem::replace(
                        &mut ring.slots[victim],
                        Slot {
                            key: key.clone(),
                            cell: Arc::clone(&cell),
                            referenced: false,
                        },
                    );
                    ring.map.remove(&old.key);
                    ring.map.insert(key.clone(), victim);
                }
                _ => {
                    let slot = ring.slots.len();
                    ring.slots.push(Slot {
                        key: key.clone(),
                        cell: Arc::clone(&cell),
                        referenced: false,
                    });
                    ring.map.insert(key.clone(), slot);
                }
            }
            cell
        };
        let guard = PoisonGuard { cell: &cell };
        let value = Arc::new(lift());
        std::mem::forget(guard);
        cell.fill(Arc::clone(&value));
        value
    }

    /// Number of resident shapes.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("lift cache poisoned").map.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifts_once_per_key_and_counts() {
        let cache: LiftedCostCache<u64, Vec<f64>> = LiftedCostCache::new();
        let mut built = 0;
        for _ in 0..3 {
            let v = cache.get_or_lift(&7, || {
                built += 1;
                vec![1.0, 2.0]
            });
            assert_eq!(*v, vec![1.0, 2.0]);
        }
        assert_eq!(built, 1);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits, stats.evictions), (1, 2, 0));
        assert_eq!(cache.len(), 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_lift_separately() {
        let cache: LiftedCostCache<u64, u64> = LiftedCostCache::new();
        assert_eq!(*cache.get_or_lift(&1, || 10), 10);
        assert_eq!(*cache.get_or_lift(&2, || 20), 20);
        assert_eq!(*cache.get_or_lift(&1, || 99), 10, "cached value wins");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn shared_values_are_one_allocation() {
        let cache: LiftedCostCache<u64, Vec<f64>> = LiftedCostCache::new();
        let a = cache.get_or_lift(&1, || vec![1.0]);
        let b = cache.get_or_lift(&1, || vec![2.0]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    /// CLOCK evicts in insertion order when no entry was re-referenced.
    #[test]
    fn eviction_follows_insertion_order_without_hits() {
        let cache: LiftedCostCache<u64, u64> = LiftedCostCache::with_capacity(Some(2));
        cache.get_or_lift(&1, || 10);
        cache.get_or_lift(&2, || 20);
        cache.get_or_lift(&3, || 30); // evicts 1 (oldest, unreferenced)
        assert_eq!(cache.len(), 2);
        assert_eq!(*cache.get_or_lift(&2, || 99), 20, "2 still resident");
        assert_eq!(*cache.get_or_lift(&1, || 11), 11, "1 was evicted, re-lifts");
        let stats = cache.stats();
        assert!(
            stats.evictions >= 2,
            "3 admitted + 1 re-admitted over cap 2"
        );
    }

    /// A hit sets the reference bit, granting a second chance: the hand
    /// skips the hit entry and evicts the next unreferenced one.
    #[test]
    fn second_chance_protects_hit_entries() {
        let cache: LiftedCostCache<u64, u64> = LiftedCostCache::with_capacity(Some(2));
        cache.get_or_lift(&1, || 10);
        cache.get_or_lift(&2, || 20);
        cache.get_or_lift(&1, || 99); // hit: reference 1
        cache.get_or_lift(&3, || 30); // hand clears 1's bit, evicts 2
        assert_eq!(*cache.get_or_lift(&1, || 99), 10, "hit entry survived");
        assert_eq!(
            *cache.get_or_lift(&2, || 21),
            21,
            "unreferenced entry evicted"
        );
    }

    /// Replaying the same access sequence produces identical counters —
    /// the policy depends only on the access sequence.
    #[test]
    fn eviction_is_deterministic_per_access_sequence() {
        let run = || {
            let cache: LiftedCostCache<u64, u64> = LiftedCostCache::with_capacity(Some(3));
            for &k in &[5u64, 1, 9, 5, 2, 7, 1, 5, 9, 3, 3, 2] {
                cache.get_or_lift(&k, || k * 10);
            }
            cache.stats()
        };
        assert_eq!(run(), run());
        assert!(run().evictions > 0);
    }

    /// A zero-capacity cache still returns correct values (pass-through).
    #[test]
    fn zero_capacity_passes_through() {
        let cache: LiftedCostCache<u64, u64> = LiftedCostCache::with_capacity(Some(0));
        assert_eq!(*cache.get_or_lift(&1, || 10), 10);
        assert_eq!(*cache.get_or_lift(&1, || 11), 11, "nothing retained");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 2, 0));
        assert!(cache.is_empty());
    }

    /// Values are identical whether or not eviction occurred in between —
    /// the bounded cache can only change counters, never results.
    #[test]
    fn bounded_and_unbounded_agree_on_values() {
        let bounded: LiftedCostCache<u64, u64> = LiftedCostCache::with_capacity(Some(1));
        let unbounded: LiftedCostCache<u64, u64> = LiftedCostCache::new();
        let lift = |k: u64| move || k * k;
        for &k in &[4u64, 9, 4, 2, 9, 4] {
            assert_eq!(
                *bounded.get_or_lift(&k, lift(k)),
                *unbounded.get_or_lift(&k, lift(k))
            );
        }
        assert!(bounded.stats().evictions > 0);
        assert_eq!(unbounded.stats().evictions, 0);
    }

    /// Builds run outside the ring lock: a builder can issue lookups for
    /// *other* keys re-entrantly (under the old build-under-lock scheme
    /// this self-deadlocked).
    #[test]
    fn builds_outside_the_lock_allow_reentrant_lookups() {
        let cache: LiftedCostCache<u64, u64> = LiftedCostCache::new();
        let v = cache.get_or_lift(&1, || *cache.get_or_lift(&2, || 20) + 1);
        assert_eq!(*v, 21);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    /// Racers on an in-flight key wait for the one build instead of
    /// re-building: misses stay "one per residency" and hits "everything
    /// else" at any thread count.
    #[test]
    fn concurrent_missers_share_one_build() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let cache: Arc<LiftedCostCache<u64, u64>> = Arc::new(LiftedCostCache::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let gate = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    gate.wait();
                    *cache.get_or_lift(&42, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the in-flight window so racers actually
                        // find the reservation.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        7
                    })
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, threads as u64 - 1);
    }

    /// Hit/miss totals are deterministic under arbitrary thread
    /// interleavings: misses == distinct keys, hits == the rest.
    #[test]
    fn totals_deterministic_at_any_thread_count() {
        for threads in [1usize, 2, 4] {
            let cache: Arc<LiftedCostCache<u64, u64>> = Arc::new(LiftedCostCache::new());
            let lookups_per_thread = 50;
            let keys = 7u64;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let cache = Arc::clone(&cache);
                    std::thread::spawn(move || {
                        for i in 0..lookups_per_thread {
                            let k = ((t + i) as u64) % keys;
                            assert_eq!(*cache.get_or_lift(&k, || k * 3), k * 3);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let stats = cache.stats();
            assert_eq!(stats.misses, keys);
            assert_eq!(stats.hits, (threads * lookups_per_thread) as u64 - keys);
        }
    }

    /// A builder that unwinds poisons its residency: waiters and later
    /// hits panic instead of hanging on a cell that will never fill.
    #[test]
    fn panicked_build_poisons_the_residency() {
        let cache: Arc<LiftedCostCache<u64, u64>> = Arc::new(LiftedCostCache::new());
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_lift(&1, || panic!("boom"));
        }));
        assert!(first.is_err());
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_lift(&1, || 10);
        }));
        assert!(second.is_err(), "hit on a poisoned residency panics");
        // Other keys are unaffected.
        assert_eq!(*cache.get_or_lift(&2, || 20), 20);
    }
}
