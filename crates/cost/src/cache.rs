//! The cross-query cost-lifting cache.
//!
//! Lifting an operator's cost closure onto the optimizer's representation
//! — grid interpolation plus one linear solve per simplex per metric — is
//! pure in the operator's cost *shape* (its numeric inputs), so queries of
//! a batch that share tables recompute identical liftings today.
//! [`LiftedCostCache`] memoizes lifted costs behind `Arc`s keyed on a
//! caller-provided canonical shape key (`mpq_cloud::shape::OpShape` in the
//! optimizer session): the first query lifts, every later query sharing
//! the shape clones an `Arc`.
//!
//! The cache is generic over both key and value so the grid backend
//! (`GridCost`), the general PWL backend (`MultiCostFn`) and the sampled
//! backend share one implementation — whatever `MpqSpace::Cost` is in a
//! session.
//!
//! # Determinism
//!
//! Values are built **while holding the map lock**, so every key is lifted
//! exactly once no matter how many worker threads race on it. Because a
//! lift is a pure function of its key (the soundness contract of the shape
//! type), cached results are bit-identical to per-query lifting — and the
//! hit/miss totals are deterministic for every thread count and batch
//! schedule: `misses` always equals the number of distinct shapes seen,
//! `hits` the remaining lookups.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/entry counts of a [`LiftedCostCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to lift (one per distinct shape).
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoizes lifted operator costs (`K` = canonical cost shape, `V` = the
/// space's cost representation) behind `Arc`-shared immutable values.
#[derive(Debug)]
pub struct LiftedCostCache<K, V> {
    map: Mutex<HashMap<K, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K, V> Default for LiftedCostCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> LiftedCostCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<K: Eq + Hash + Clone, V> LiftedCostCache<K, V> {
    /// The lifted cost for `key`, building it with `lift` on first sight.
    ///
    /// `lift` runs under the cache lock: each key is built exactly once,
    /// which keeps the counters deterministic under concurrency (see the
    /// module docs). Lifts are pure and allocation-bound, so the critical
    /// section is short; a contended build blocks only threads asking for
    /// a cost they are about to need anyway.
    pub fn get_or_lift(&self, key: &K, lift: impl FnOnce() -> V) -> Arc<V> {
        let mut map = self.map.lock().expect("lift cache poisoned");
        if let Some(v) = map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(lift());
        map.insert(key.clone(), Arc::clone(&v));
        v
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.map.lock().expect("lift cache poisoned").len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifts_once_per_key_and_counts() {
        let cache: LiftedCostCache<u64, Vec<f64>> = LiftedCostCache::new();
        let mut built = 0;
        for _ in 0..3 {
            let v = cache.get_or_lift(&7, || {
                built += 1;
                vec![1.0, 2.0]
            });
            assert_eq!(*v, vec![1.0, 2.0]);
        }
        assert_eq!(built, 1);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
        assert_eq!(cache.len(), 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_lift_separately() {
        let cache: LiftedCostCache<u64, u64> = LiftedCostCache::new();
        assert_eq!(*cache.get_or_lift(&1, || 10), 10);
        assert_eq!(*cache.get_or_lift(&2, || 20), 20);
        assert_eq!(*cache.get_or_lift(&1, || 99), 10, "cached value wins");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn shared_values_are_one_allocation() {
        let cache: LiftedCostCache<u64, Vec<f64>> = LiftedCostCache::new();
        let a = cache.get_or_lift(&1, || vec![1.0]);
        let b = cache.get_or_lift(&1, || vec![2.0]);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
