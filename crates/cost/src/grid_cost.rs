//! Grid-aligned multi-objective cost functions.
//!
//! [`GridCost`] is the cost representation used by the optimizer's default
//! PWL space. Every cost function of a run is linear on the *same* shared
//! simplices (one [`mpq_geometry::grid::ParamGrid`]), which realises
//! Theorem 1 of the paper — the parameter space is partitioned into linear
//! regions for the whole plan set — with three payoffs:
//!
//! * **accumulation is LP-free**: adding two functions adds their weight
//!   vectors per simplex (Figure 11 degenerates to aligned regions);
//! * **piece counts never grow**: the sum of two `GridCost`s has exactly
//!   one linear piece per simplex;
//! * **dominance geometry is local**: within a simplex, the region where
//!   one plan dominates another is the simplex intersected with one
//!   halfspace per metric (Theorem 2), and because a linear function on a
//!   simplex attains its extrema at the vertices, many dominance questions
//!   are answered exactly by comparing vertex values — no LP at all.

use crate::{approx, CostVec, LinearFn, LinearPiece, MultiCostFn, PwlFn};
use mpq_geometry::grid::ParamGrid;
use mpq_geometry::{Halfspace, HalfspaceKind, Polytope};
use std::sync::Arc;

/// Comparison tolerance for cost values: absolute floor plus a relative
/// component, since costs range from fractions of a second to days.
#[inline]
pub fn cost_le(a: f64, b: f64) -> bool {
    a <= b + 1e-9 + 1e-12 * a.abs().max(b.abs())
}

/// How one plan's metric compares to another's within one simplex.
#[derive(Debug, Clone)]
pub enum MetricOnSimplex {
    /// `self ≤ other` on the whole simplex (all vertex differences ≤ 0).
    AlwaysLe,
    /// `self > other` on the whole simplex (all vertex differences > 0):
    /// the dominance region is empty for this metric.
    NeverLe,
    /// The comparison flips across the hyperplane carried here
    /// (`{x : self(x) ≤ other(x)}` within the simplex).
    Split(Halfspace),
}

/// Result of intersecting dominance constraints over all metrics within a
/// simplex.
#[derive(Debug, Clone)]
pub enum SimplexDominance {
    /// Dominates on the entire simplex.
    Full,
    /// Dominates nowhere on the simplex.
    Empty,
    /// Dominates exactly on the carried polytope (simplex ∩ halfspaces);
    /// may still have empty interior when several metrics split.
    Partial(Polytope),
}

/// Halfspace-level form of [`SimplexDominance`]: the dominance region is
/// the simplex intersected with the carried halfspaces. Storing only the
/// halfspaces lets relevance regions share the simplex polytope across all
/// cutouts of a simplex, which makes redundancy tests O(#metrics) LPs
/// instead of O(#simplex constraints).
#[derive(Debug, Clone)]
pub enum DominanceHalfspaces {
    /// Dominates on the entire simplex.
    Full,
    /// Dominates nowhere on the simplex.
    Empty,
    /// Dominates on `simplex ∩ halfspaces` (one halfspace per split
    /// metric; may have empty interior when several metrics split).
    Split(Vec<Halfspace>),
}

/// A multi-objective cost function linear on each simplex of a shared grid.
#[derive(Debug, Clone)]
pub struct GridCost {
    grid: Arc<ParamGrid>,
    /// `metrics[m][s]` — the linear function of metric `m` on simplex `s`.
    metrics: Vec<Vec<LinearFn>>,
}

impl GridCost {
    /// Builds a cost function from per-metric, per-simplex linear pieces.
    ///
    /// # Panics
    /// Panics if the shape does not match the grid or no metric is given.
    pub fn new(grid: Arc<ParamGrid>, metrics: Vec<Vec<LinearFn>>) -> Self {
        assert!(!metrics.is_empty(), "at least one cost metric is required");
        assert!(metrics.iter().all(|m| m.len() == grid.num_simplices()));
        Self { grid, metrics }
    }

    /// Approximates the vector-valued closure `f` on the grid (exact at
    /// grid vertices; see [`crate::approx`]).
    pub fn from_closure(
        grid: Arc<ParamGrid>,
        num_metrics: usize,
        f: impl Fn(&[f64]) -> CostVec,
    ) -> Self {
        let metrics = (0..num_metrics)
            .map(|m| {
                approx::approximate_scalar(&grid, |x| {
                    let v = f(x);
                    debug_assert_eq!(v.len(), num_metrics);
                    v[m]
                })
            })
            .collect();
        Self::new(grid, metrics)
    }

    /// The zero cost function.
    pub fn zero(grid: Arc<ParamGrid>, num_metrics: usize) -> Self {
        let dim = grid.dim();
        let n = grid.num_simplices();
        let metrics = vec![vec![LinearFn::constant(dim, 0.0); n]; num_metrics];
        Self::new(grid, metrics)
    }

    /// The shared grid.
    pub fn grid(&self) -> &Arc<ParamGrid> {
        &self.grid
    }

    /// Number of metrics.
    pub fn num_metrics(&self) -> usize {
        self.metrics.len()
    }

    /// The linear function of `metric` on `simplex`.
    pub fn piece(&self, metric: usize, simplex: usize) -> &LinearFn {
        &self.metrics[metric][simplex]
    }

    /// Evaluates all metrics at `x` (clamped into the grid box).
    pub fn eval(&self, x: &[f64]) -> CostVec {
        let s = self.grid.locate(x);
        self.metrics.iter().map(|m| m[s].eval(x)).collect()
    }

    /// Metric-wise, simplex-wise sum — the LP-free accumulation step.
    ///
    /// # Panics
    /// Panics if the operands use different grids or metric counts.
    pub fn add(&self, other: &GridCost) -> GridCost {
        assert!(
            Arc::ptr_eq(&self.grid, &other.grid),
            "GridCost operands must share one ParamGrid"
        );
        assert_eq!(self.num_metrics(), other.num_metrics());
        let metrics = self
            .metrics
            .iter()
            .zip(&other.metrics)
            .map(|(a, b)| a.iter().zip(b).map(|(f, g)| f.add(g)).collect())
            .collect();
        GridCost {
            grid: Arc::clone(&self.grid),
            metrics,
        }
    }

    /// In-place version of [`GridCost::add`].
    pub fn add_assign(&mut self, other: &GridCost) {
        assert!(Arc::ptr_eq(&self.grid, &other.grid));
        assert_eq!(self.num_metrics(), other.num_metrics());
        for (a, b) in self.metrics.iter_mut().zip(&other.metrics) {
            for (f, g) in a.iter_mut().zip(b) {
                f.add_assign(g);
            }
        }
    }

    /// Classifies metric `m` of `self` against `other` on one simplex by
    /// comparing vertex values (exact — a linear function on a simplex
    /// attains its extrema at vertices).
    pub fn classify_metric(
        &self,
        other: &GridCost,
        metric: usize,
        simplex: usize,
    ) -> MetricOnSimplex {
        let mine = &self.metrics[metric][simplex];
        let theirs = &other.metrics[metric][simplex];
        let d = mine.sub(theirs);
        let verts = &self.grid.simplex(simplex).vertices;
        let mut any_le = false;
        let mut any_gt = false;
        for v in verts {
            if cost_le(d.eval(v), 0.0) {
                any_le = true;
            } else {
                any_gt = true;
            }
        }
        match (any_le, any_gt) {
            (true, false) => MetricOnSimplex::AlwaysLe,
            (false, _) => MetricOnSimplex::NeverLe,
            (true, true) => {
                // d(x) ≤ 0  ⇔  d.w · x ≤ −d.b.
                match Halfspace::new(d.w.clone(), -d.b) {
                    HalfspaceKind::Proper(h) => MetricOnSimplex::Split(h),
                    // Degenerate cases are covered by the vertex test above.
                    HalfspaceKind::AlwaysTrue => MetricOnSimplex::AlwaysLe,
                    HalfspaceKind::AlwaysFalse => MetricOnSimplex::NeverLe,
                }
            }
        }
    }

    /// True iff `self` and `other` are (numerically) the same function on
    /// the simplex — equal per metric at every vertex, hence everywhere on
    /// the simplex by linearity.
    pub fn identical_on_simplex(&self, other: &GridCost, simplex: usize) -> bool {
        let verts = &self.grid.simplex(simplex).vertices;
        (0..self.num_metrics()).all(|m| {
            let mine = &self.metrics[m][simplex];
            let theirs = &other.metrics[m][simplex];
            verts.iter().all(|v| {
                let (a, b) = (mine.eval(v), theirs.eval(v));
                cost_le(a, b) && cost_le(b, a)
            })
        })
    }

    /// The halfspaces confining the region within one simplex where `self`
    /// dominates `other` (at-most-equal on **every** metric).
    ///
    /// With `strict`, simplices on which the two functions are identical
    /// report [`DominanceHalfspaces::Empty`]: strict dominance `StD`
    /// excludes equal-cost points (paper Section 2), and RRPA reduces
    /// *retained* plans' regions strictly so that one representative of
    /// every tie class stays relevant.
    pub fn dominance_halfspaces(
        &self,
        other: &GridCost,
        simplex: usize,
        strict: bool,
    ) -> DominanceHalfspaces {
        if strict && self.identical_on_simplex(other, simplex) {
            return DominanceHalfspaces::Empty;
        }
        let mut halfspaces: Vec<Halfspace> = Vec::new();
        for m in 0..self.num_metrics() {
            match self.classify_metric(other, m, simplex) {
                MetricOnSimplex::NeverLe => return DominanceHalfspaces::Empty,
                MetricOnSimplex::AlwaysLe => {}
                MetricOnSimplex::Split(h) => halfspaces.push(h),
            }
        }
        if halfspaces.is_empty() {
            DominanceHalfspaces::Full
        } else {
            DominanceHalfspaces::Split(halfspaces)
        }
    }

    /// The region within one simplex where `self` dominates `other`, as a
    /// polytope (see [`GridCost::dominance_halfspaces`]).
    pub fn dominance_in_simplex(
        &self,
        other: &GridCost,
        simplex: usize,
        strict: bool,
    ) -> SimplexDominance {
        match self.dominance_halfspaces(other, simplex, strict) {
            DominanceHalfspaces::Full => SimplexDominance::Full,
            DominanceHalfspaces::Empty => SimplexDominance::Empty,
            DominanceHalfspaces::Split(halfspaces) => {
                let mut region = self.grid.simplex(simplex).polytope.clone();
                for h in halfspaces {
                    region.push(h);
                }
                SimplexDominance::Partial(region)
            }
        }
    }

    /// True iff `self` dominates `other` over the entire parameter space —
    /// at-most-equal per metric at every simplex vertex. Exact and LP-free.
    pub fn dominates_everywhere(&self, other: &GridCost) -> bool {
        (0..self.num_metrics()).all(|m| {
            (0..self.grid.num_simplices())
                .all(|s| matches!(self.classify_metric(other, m, s), MetricOnSimplex::AlwaysLe))
        })
    }

    /// True iff `self` dominates `other` at the point `x`.
    pub fn dominates_at(&self, other: &GridCost, x: &[f64]) -> bool {
        self.eval(x)
            .iter()
            .zip(other.eval(x))
            .all(|(a, b)| cost_le(*a, b))
    }

    /// Converts to the general representation (one piece per simplex per
    /// metric) for interop with [`MultiCostFn`]-based code and tests.
    pub fn to_multi_cost_fn(&self) -> MultiCostFn {
        let dim = self.grid.dim();
        let metrics = self
            .metrics
            .iter()
            .map(|per_simplex| {
                let pieces = self
                    .grid
                    .simplices()
                    .iter()
                    .zip(per_simplex)
                    .map(|(s, f)| LinearPiece {
                        region: s.polytope.clone(),
                        f: f.clone(),
                    })
                    .collect();
                PwlFn::new(dim, pieces)
            })
            .collect();
        MultiCostFn::new(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid1d(res: usize) -> Arc<ParamGrid> {
        Arc::new(ParamGrid::new(&[0.0], &[1.0], res).unwrap())
    }

    #[test]
    fn closure_roundtrip_and_add() {
        let grid = grid1d(4);
        let a = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0], 1.0]);
        let b = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![1.0 - x[0], 2.0]);
        let s = a.add(&b);
        let v = s.eval(&[0.3]);
        assert!((v[0] - 1.0).abs() < 1e-9);
        assert!((v[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn dominates_everywhere_vertex_exactness() {
        let grid = grid1d(4);
        let cheap = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0], 1.0]);
        let pricey = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0] + 0.5, 1.0]);
        assert!(cheap.dominates_everywhere(&pricey));
        assert!(!pricey.dominates_everywhere(&cheap));
        // Equal functions dominate each other (non-strictly).
        assert!(cheap.dominates_everywhere(&cheap.clone()));
    }

    #[test]
    fn classify_metric_detects_split() {
        let grid = grid1d(1); // single simplex [0, 1]
        let a = GridCost::from_closure(Arc::clone(&grid), 1, |x| vec![x[0]]);
        let b = GridCost::from_closure(Arc::clone(&grid), 1, |_| vec![0.25]);
        match a.classify_metric(&b, 0, 0) {
            MetricOnSimplex::Split(h) => {
                // a ≤ b exactly on [0, 0.25].
                assert!(h.contains(&[0.1]));
                assert!(!h.contains(&[0.5]));
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn dominance_in_simplex_cases() {
        let grid = grid1d(1);
        // time: a = σ vs b = 0.25; fees: a = 1 vs b = 2.
        let a = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0], 1.0]);
        let b = GridCost::from_closure(Arc::clone(&grid), 2, |_| vec![0.25, 2.0]);
        match a.dominance_in_simplex(&b, 0, false) {
            SimplexDominance::Partial(p) => {
                assert!(p.contains_point(&[0.2]));
                assert!(!p.contains_point(&[0.3]));
            }
            other => panic!("expected partial, got {other:?}"),
        }
        // Reverse direction: b never beats a on fees → empty.
        assert!(matches!(
            b.dominance_in_simplex(&a, 0, false),
            SimplexDominance::Empty
        ));
        // A strictly better plan dominates fully.
        let best = GridCost::from_closure(Arc::clone(&grid), 2, |_| vec![0.0, 0.0]);
        assert!(matches!(
            best.dominance_in_simplex(&a, 0, false),
            SimplexDominance::Full
        ));
    }

    #[test]
    fn conversion_to_multi_cost_fn_agrees() {
        let grid = Arc::new(ParamGrid::new(&[0.0, 0.0], &[1.0, 1.0], 2).unwrap());
        let g = GridCost::from_closure(Arc::clone(&grid), 2, |x| {
            vec![x[0] * x[1] + 1.0, 2.0 - x[0]]
        });
        let mc = g.to_multi_cost_fn();
        for p in mpq_geometry::grid::lattice(&[0.0, 0.0], &[1.0, 1.0], 5) {
            let gv = g.eval(&p);
            let mv = mc.eval(&p).unwrap();
            assert!((gv[0] - mv[0]).abs() < 1e-9 && (gv[1] - mv[1]).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "share one ParamGrid")]
    fn adding_across_grids_panics() {
        let a = GridCost::zero(grid1d(2), 1);
        let b = GridCost::zero(grid1d(2), 1);
        let _ = a.add(&b);
    }
}
