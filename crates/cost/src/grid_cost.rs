//! Grid-aligned multi-objective cost functions.
//!
//! [`GridCost`] is the cost representation used by the optimizer's default
//! PWL space. Every cost function of a run is linear on the *same* shared
//! simplices (one [`mpq_geometry::grid::ParamGrid`]), which realises
//! Theorem 1 of the paper — the parameter space is partitioned into linear
//! regions for the whole plan set — with three payoffs:
//!
//! * **accumulation is LP-free**: adding two functions adds their weight
//!   vectors per simplex (Figure 11 degenerates to aligned regions);
//! * **piece counts never grow**: the sum of two `GridCost`s has exactly
//!   one linear piece per simplex;
//! * **dominance geometry is local**: within a simplex, the region where
//!   one plan dominates another is the simplex intersected with one
//!   halfspace per metric (Theorem 2), and because a linear function on a
//!   simplex attains its extrema at the vertices, many dominance questions
//!   are answered exactly by comparing vertex values — no LP at all.
//!
//! # Storage
//!
//! All pieces of all metrics live in **one flat `f64` buffer** laid out as
//! `[metric][simplex][w₀ … w_{d−1}, b]`. Cost accumulation — executed once
//! or twice per candidate plan of the RRPA dynamic program — is a single
//! fused loop over that buffer and performs exactly one allocation (the
//! result buffer); no per-piece or per-metric vectors exist. Dominance
//! classification materialises per-simplex differences in a stack-allocated
//! [`SmallVec`], so the candidate-pruning hot path does not allocate until
//! an actual split halfspace must be produced.

use crate::{approx, CostVec, LinearFn, LinearPiece, MultiCostFn, PwlFn};
use mpq_geometry::grid::ParamGrid;
use mpq_geometry::{Halfspace, HalfspaceKind, Polytope};
use mpq_lp::dense::dot;
use smallvec::SmallVec;
use std::sync::Arc;

/// Comparison tolerance for cost values: absolute floor plus a relative
/// component, since costs range from fractions of a second to days.
#[inline]
pub fn cost_le(a: f64, b: f64) -> bool {
    a <= b + 1e-9 + 1e-12 * a.abs().max(b.abs())
}

/// How one plan's metric compares to another's within one simplex.
#[derive(Debug, Clone)]
pub enum MetricOnSimplex {
    /// `self ≤ other` on the whole simplex (all vertex differences ≤ 0).
    AlwaysLe,
    /// `self > other` on the whole simplex (all vertex differences > 0):
    /// the dominance region is empty for this metric.
    NeverLe,
    /// The comparison flips across the hyperplane carried here
    /// (`{x : self(x) ≤ other(x)}` within the simplex).
    Split(Halfspace),
}

/// Result of intersecting dominance constraints over all metrics within a
/// simplex.
#[derive(Debug, Clone)]
pub enum SimplexDominance {
    /// Dominates on the entire simplex.
    Full,
    /// Dominates nowhere on the simplex.
    Empty,
    /// Dominates exactly on the carried polytope (simplex ∩ halfspaces);
    /// may still have empty interior when several metrics split.
    Partial(Polytope),
}

/// Inline halfspace list for per-simplex dominance constraints — the
/// shared region engine's cutout representation ([`mpq_geometry::region`]),
/// re-exported so dominance classification hands its halfspaces to the
/// engine without conversion.
pub use mpq_geometry::HalfspaceList;

/// Halfspace-level form of [`SimplexDominance`]: the dominance region is
/// the simplex intersected with the carried halfspaces. Storing only the
/// halfspaces lets relevance regions share the simplex polytope across all
/// cutouts of a simplex, which makes redundancy tests O(#metrics) LPs
/// instead of O(#simplex constraints).
#[derive(Debug, Clone)]
pub enum DominanceHalfspaces {
    /// Dominates on the entire simplex.
    Full,
    /// Dominates nowhere on the simplex.
    Empty,
    /// Dominates on `simplex ∩ halfspaces` (one halfspace per split
    /// metric; may have empty interior when several metrics split).
    Split(HalfspaceList),
}

/// A multi-objective cost function linear on each simplex of a shared grid.
#[derive(Debug, Clone)]
pub struct GridCost {
    grid: Arc<ParamGrid>,
    num_metrics: usize,
    /// Flat piece table `[metric][simplex][w₀ … w_{d−1}, b]`.
    data: Vec<f64>,
}

impl GridCost {
    /// Entries per piece: the weight vector plus the base cost.
    #[inline]
    fn stride(&self) -> usize {
        self.grid.dim() + 1
    }

    /// Offset of piece `(metric, simplex)` in the flat table.
    #[inline]
    fn offset(&self, metric: usize, simplex: usize) -> usize {
        (metric * self.grid.num_simplices() + simplex) * self.stride()
    }

    /// The `[w₀ … w_{d−1}, b]` slice of one piece.
    #[inline]
    fn piece_slice(&self, metric: usize, simplex: usize) -> &[f64] {
        let o = self.offset(metric, simplex);
        &self.data[o..o + self.stride()]
    }

    /// Builds a cost function from per-metric, per-simplex linear pieces.
    ///
    /// # Panics
    /// Panics if the shape does not match the grid or no metric is given.
    pub fn new(grid: Arc<ParamGrid>, metrics: Vec<Vec<LinearFn>>) -> Self {
        assert!(!metrics.is_empty(), "at least one cost metric is required");
        assert!(metrics.iter().all(|m| m.len() == grid.num_simplices()));
        let dim = grid.dim();
        let mut data = Vec::with_capacity(metrics.len() * grid.num_simplices() * (dim + 1));
        for per_simplex in &metrics {
            for f in per_simplex {
                debug_assert_eq!(f.dim(), dim);
                data.extend_from_slice(&f.w);
                data.push(f.b);
            }
        }
        Self {
            grid,
            num_metrics: metrics.len(),
            data,
        }
    }

    /// Approximates the vector-valued closure `f` on the grid (exact at
    /// grid vertices; see [`crate::approx`]). The closure is evaluated
    /// once per distinct vertex for all metrics.
    pub fn from_closure(
        grid: Arc<ParamGrid>,
        num_metrics: usize,
        f: impl Fn(&[f64]) -> CostVec,
    ) -> Self {
        let metrics = approx::approximate_vector(&grid, num_metrics, f);
        Self::new(grid, metrics)
    }

    /// The zero cost function.
    pub fn zero(grid: Arc<ParamGrid>, num_metrics: usize) -> Self {
        assert!(num_metrics > 0, "at least one cost metric is required");
        let len = num_metrics * grid.num_simplices() * (grid.dim() + 1);
        Self {
            grid,
            num_metrics,
            data: vec![0.0; len],
        }
    }

    /// The shared grid.
    pub fn grid(&self) -> &Arc<ParamGrid> {
        &self.grid
    }

    /// Number of metrics.
    pub fn num_metrics(&self) -> usize {
        self.num_metrics
    }

    /// The linear function of `metric` on `simplex` (materialised from the
    /// flat piece table; intended for display and interop, not hot paths).
    pub fn piece(&self, metric: usize, simplex: usize) -> LinearFn {
        let s = self.piece_slice(metric, simplex);
        let (w, b) = s.split_at(self.grid.dim());
        LinearFn::new(w.to_vec(), b[0])
    }

    /// Evaluates piece `(metric, simplex)` at `x`.
    #[inline]
    fn eval_piece(&self, metric: usize, simplex: usize, x: &[f64]) -> f64 {
        let s = self.piece_slice(metric, simplex);
        let (w, b) = s.split_at(self.grid.dim());
        b[0] + dot(w, x)
    }

    /// Evaluates all metrics at `x` (clamped into the grid box).
    pub fn eval(&self, x: &[f64]) -> CostVec {
        let s = self.grid.locate(x);
        (0..self.num_metrics)
            .map(|m| self.eval_piece(m, s, x))
            .collect()
    }

    fn assert_compatible(&self, other: &GridCost) {
        assert!(
            Arc::ptr_eq(&self.grid, &other.grid),
            "GridCost operands must share one ParamGrid"
        );
        assert_eq!(self.num_metrics, other.num_metrics);
    }

    /// Metric-wise, simplex-wise sum — the LP-free accumulation step.
    /// One fused pass over the flat piece tables; a single allocation.
    ///
    /// # Panics
    /// Panics if the operands use different grids or metric counts.
    pub fn add(&self, other: &GridCost) -> GridCost {
        self.assert_compatible(other);
        GridCost {
            grid: Arc::clone(&self.grid),
            num_metrics: self.num_metrics,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Fused three-way sum `(self + other) + third`: one pass, one
    /// allocation — the per-candidate accumulation of RRPA (left sub-plan
    /// + right sub-plan + join operator) without the intermediate sum.
    ///
    /// Floating-point association order matches `self.add(other).add(third)`.
    pub fn sum3(&self, other: &GridCost, third: &GridCost) -> GridCost {
        self.assert_compatible(other);
        self.assert_compatible(third);
        GridCost {
            grid: Arc::clone(&self.grid),
            num_metrics: self.num_metrics,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .zip(&third.data)
                .map(|((a, b), c)| (a + b) + c)
                .collect(),
        }
    }

    /// In-place version of [`GridCost::add`].
    pub fn add_assign(&mut self, other: &GridCost) {
        self.assert_compatible(other);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Classifies metric `m` of `self` against `other` on one simplex by
    /// comparing vertex values (exact — a linear function on a simplex
    /// attains its extrema at vertices).
    pub fn classify_metric(
        &self,
        other: &GridCost,
        metric: usize,
        simplex: usize,
    ) -> MetricOnSimplex {
        let dim = self.grid.dim();
        let mine = self.piece_slice(metric, simplex);
        let theirs = other.piece_slice(metric, simplex);
        // The difference piece `d = mine − theirs`, evaluated term-fused —
        // identical float association to materialising `dw` and dotting.
        let db = mine[dim] - theirs[dim];
        let d_eval = |v: &[f64]| {
            db + mine[..dim]
                .iter()
                .zip(&theirs[..dim])
                .zip(v)
                .map(|((a, b), x)| (a - b) * x)
                .sum::<f64>()
        };
        let verts = &self.grid.simplex(simplex).vertices;
        let mut any_le = false;
        let mut any_gt = false;
        for v in verts {
            if cost_le(d_eval(v), 0.0) {
                any_le = true;
            } else {
                any_gt = true;
            }
        }
        match (any_le, any_gt) {
            (true, false) => MetricOnSimplex::AlwaysLe,
            (false, _) => MetricOnSimplex::NeverLe,
            (true, true) => {
                // d(x) ≤ 0  ⇔  dw · x ≤ −db. The weight difference is only
                // materialised for this (rare) split case.
                let dw: SmallVec<[f64; 8]> = mine[..dim]
                    .iter()
                    .zip(&theirs[..dim])
                    .map(|(a, b)| a - b)
                    .collect();
                match Halfspace::new(&dw[..], -db) {
                    HalfspaceKind::Proper(h) => MetricOnSimplex::Split(h),
                    // Degenerate cases are covered by the vertex test above.
                    HalfspaceKind::AlwaysTrue => MetricOnSimplex::AlwaysLe,
                    HalfspaceKind::AlwaysFalse => MetricOnSimplex::NeverLe,
                }
            }
        }
    }

    /// [`GridCost::classify_metric`] under a multiplicative `(1+ε)` band:
    /// classifies where `self ≤ band · other` on the simplex. With
    /// `band == 1.0` it delegates to the exact classification (identical
    /// code path, bit for bit). Like the exact case, the comparison is
    /// vertex-exact: `self − band·other` is linear on the simplex, so its
    /// sign pattern at the vertices decides the whole simplex.
    pub fn classify_metric_banded(
        &self,
        other: &GridCost,
        metric: usize,
        simplex: usize,
        band: f64,
    ) -> MetricOnSimplex {
        if band == 1.0 {
            return self.classify_metric(other, metric, simplex);
        }
        let dim = self.grid.dim();
        let mine = self.piece_slice(metric, simplex);
        let theirs = other.piece_slice(metric, simplex);
        // The banded difference piece `d = mine − band · theirs`,
        // term-fused exactly like the exact classification.
        let db = mine[dim] - band * theirs[dim];
        let d_eval = |v: &[f64]| {
            db + mine[..dim]
                .iter()
                .zip(&theirs[..dim])
                .zip(v)
                .map(|((a, b), x)| (a - band * b) * x)
                .sum::<f64>()
        };
        let verts = &self.grid.simplex(simplex).vertices;
        let mut any_le = false;
        let mut any_gt = false;
        for v in verts {
            if cost_le(d_eval(v), 0.0) {
                any_le = true;
            } else {
                any_gt = true;
            }
        }
        match (any_le, any_gt) {
            (true, false) => MetricOnSimplex::AlwaysLe,
            (false, _) => MetricOnSimplex::NeverLe,
            (true, true) => {
                let dw: SmallVec<[f64; 8]> = mine[..dim]
                    .iter()
                    .zip(&theirs[..dim])
                    .map(|(a, b)| a - band * b)
                    .collect();
                match Halfspace::new(&dw[..], -db) {
                    HalfspaceKind::Proper(h) => MetricOnSimplex::Split(h),
                    HalfspaceKind::AlwaysTrue => MetricOnSimplex::AlwaysLe,
                    HalfspaceKind::AlwaysFalse => MetricOnSimplex::NeverLe,
                }
            }
        }
    }

    /// True iff `self` and `other` are (numerically) the same function on
    /// the simplex — equal per metric at every vertex, hence everywhere on
    /// the simplex by linearity.
    pub fn identical_on_simplex(&self, other: &GridCost, simplex: usize) -> bool {
        let verts = &self.grid.simplex(simplex).vertices;
        (0..self.num_metrics).all(|m| {
            verts.iter().all(|v| {
                let (a, b) = (
                    self.eval_piece(m, simplex, v),
                    other.eval_piece(m, simplex, v),
                );
                cost_le(a, b) && cost_le(b, a)
            })
        })
    }

    /// The halfspaces confining the region within one simplex where `self`
    /// dominates `other` (at-most-equal on **every** metric).
    ///
    /// With `strict`, simplices on which the two functions are identical
    /// report [`DominanceHalfspaces::Empty`]: strict dominance `StD`
    /// excludes equal-cost points (paper Section 2), and RRPA reduces
    /// *retained* plans' regions strictly so that one representative of
    /// every tie class stays relevant.
    pub fn dominance_halfspaces(
        &self,
        other: &GridCost,
        simplex: usize,
        strict: bool,
    ) -> DominanceHalfspaces {
        if strict && self.identical_on_simplex(other, simplex) {
            return DominanceHalfspaces::Empty;
        }
        let mut halfspaces = HalfspaceList::new();
        for m in 0..self.num_metrics {
            match self.classify_metric(other, m, simplex) {
                MetricOnSimplex::NeverLe => return DominanceHalfspaces::Empty,
                MetricOnSimplex::AlwaysLe => {}
                MetricOnSimplex::Split(h) => halfspaces.push(h),
            }
        }
        if halfspaces.is_empty() {
            DominanceHalfspaces::Full
        } else {
            DominanceHalfspaces::Split(halfspaces)
        }
    }

    /// [`GridCost::dominance_halfspaces`] under a multiplicative band: the
    /// halfspaces confining the region within one simplex where `self`
    /// **(1+ε)-dominates** `other` — `self ≤ band · other` on every metric.
    /// Always non-strict (RRPA applies the band only when reducing the
    /// *incoming* plan's region; retained plans reduce exactly), and with
    /// `band == 1.0` identical to the exact non-strict computation.
    pub fn dominance_halfspaces_banded(
        &self,
        other: &GridCost,
        simplex: usize,
        band: f64,
    ) -> DominanceHalfspaces {
        if band == 1.0 {
            return self.dominance_halfspaces(other, simplex, false);
        }
        let mut halfspaces = HalfspaceList::new();
        for m in 0..self.num_metrics {
            match self.classify_metric_banded(other, m, simplex, band) {
                MetricOnSimplex::NeverLe => return DominanceHalfspaces::Empty,
                MetricOnSimplex::AlwaysLe => {}
                MetricOnSimplex::Split(h) => halfspaces.push(h),
            }
        }
        if halfspaces.is_empty() {
            DominanceHalfspaces::Full
        } else {
            DominanceHalfspaces::Split(halfspaces)
        }
    }

    /// The region within one simplex where `self` dominates `other`, as a
    /// polytope (see [`GridCost::dominance_halfspaces`]).
    pub fn dominance_in_simplex(
        &self,
        other: &GridCost,
        simplex: usize,
        strict: bool,
    ) -> SimplexDominance {
        match self.dominance_halfspaces(other, simplex, strict) {
            DominanceHalfspaces::Full => SimplexDominance::Full,
            DominanceHalfspaces::Empty => SimplexDominance::Empty,
            DominanceHalfspaces::Split(halfspaces) => {
                let mut region = self.grid.simplex(simplex).polytope.clone();
                for h in halfspaces {
                    region.push(h);
                }
                SimplexDominance::Partial(region)
            }
        }
    }

    /// True iff `self` dominates `other` over the entire parameter space —
    /// at-most-equal per metric at every simplex vertex. Exact and LP-free.
    pub fn dominates_everywhere(&self, other: &GridCost) -> bool {
        (0..self.num_metrics).all(|m| {
            (0..self.grid.num_simplices())
                .all(|s| matches!(self.classify_metric(other, m, s), MetricOnSimplex::AlwaysLe))
        })
    }

    /// True iff `self` **(1+ε)-dominates** `other` over the entire
    /// parameter space: `self ≤ band · other` per metric at every simplex
    /// vertex. Exact and LP-free; `band == 1.0` delegates to the exact
    /// test.
    pub fn dominates_everywhere_banded(&self, other: &GridCost, band: f64) -> bool {
        if band == 1.0 {
            return self.dominates_everywhere(other);
        }
        (0..self.num_metrics).all(|m| {
            (0..self.grid.num_simplices()).all(|s| {
                matches!(
                    self.classify_metric_banded(other, m, s, band),
                    MetricOnSimplex::AlwaysLe
                )
            })
        })
    }

    /// True iff `self` dominates `other` at the point `x`.
    pub fn dominates_at(&self, other: &GridCost, x: &[f64]) -> bool {
        self.eval(x)
            .iter()
            .zip(other.eval(x))
            .all(|(a, b)| cost_le(*a, b))
    }

    /// Converts to the general representation (one piece per simplex per
    /// metric) for interop with [`MultiCostFn`]-based code and tests.
    /// Piece regions are the grid's interned simplex polytopes.
    pub fn to_multi_cost_fn(&self) -> MultiCostFn {
        let dim = self.grid.dim();
        let metrics = (0..self.num_metrics)
            .map(|m| {
                let pieces = self
                    .grid
                    .simplices()
                    .iter()
                    .map(|s| LinearPiece {
                        region: Arc::clone(self.grid.simplex_poly(s.id)),
                        f: self.piece(m, s.id),
                    })
                    .collect();
                PwlFn::new(dim, pieces)
            })
            .collect();
        MultiCostFn::new(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid1d(res: usize) -> Arc<ParamGrid> {
        Arc::new(ParamGrid::new(&[0.0], &[1.0], res).unwrap())
    }

    #[test]
    fn closure_roundtrip_and_add() {
        let grid = grid1d(4);
        let a = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0], 1.0]);
        let b = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![1.0 - x[0], 2.0]);
        let s = a.add(&b);
        let v = s.eval(&[0.3]);
        assert!((v[0] - 1.0).abs() < 1e-9);
        assert!((v[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sum3_matches_chained_adds() {
        let grid = grid1d(3);
        let a = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0], 1.0]);
        let b = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![2.0 * x[0], 0.5]);
        let c = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![1.0 - x[0], 3.0]);
        let fused = a.sum3(&b, &c);
        let chained = a.add(&b).add(&c);
        assert_eq!(fused.data, chained.data, "identical association order");
    }

    #[test]
    fn dominates_everywhere_vertex_exactness() {
        let grid = grid1d(4);
        let cheap = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0], 1.0]);
        let pricey = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0] + 0.5, 1.0]);
        assert!(cheap.dominates_everywhere(&pricey));
        assert!(!pricey.dominates_everywhere(&cheap));
        // Equal functions dominate each other (non-strictly).
        assert!(cheap.dominates_everywhere(&cheap.clone()));
    }

    #[test]
    fn classify_metric_detects_split() {
        let grid = grid1d(1); // single simplex [0, 1]
        let a = GridCost::from_closure(Arc::clone(&grid), 1, |x| vec![x[0]]);
        let b = GridCost::from_closure(Arc::clone(&grid), 1, |_| vec![0.25]);
        match a.classify_metric(&b, 0, 0) {
            MetricOnSimplex::Split(h) => {
                // a ≤ b exactly on [0, 0.25].
                assert!(h.contains(&[0.1]));
                assert!(!h.contains(&[0.5]));
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn dominance_in_simplex_cases() {
        let grid = grid1d(1);
        // time: a = σ vs b = 0.25; fees: a = 1 vs b = 2.
        let a = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0], 1.0]);
        let b = GridCost::from_closure(Arc::clone(&grid), 2, |_| vec![0.25, 2.0]);
        match a.dominance_in_simplex(&b, 0, false) {
            SimplexDominance::Partial(p) => {
                assert!(p.contains_point(&[0.2]));
                assert!(!p.contains_point(&[0.3]));
            }
            other => panic!("expected partial, got {other:?}"),
        }
        // Reverse direction: b never beats a on fees → empty.
        assert!(matches!(
            b.dominance_in_simplex(&a, 0, false),
            SimplexDominance::Empty
        ));
        // A strictly better plan dominates fully.
        let best = GridCost::from_closure(Arc::clone(&grid), 2, |_| vec![0.0, 0.0]);
        assert!(matches!(
            best.dominance_in_simplex(&a, 0, false),
            SimplexDominance::Full
        ));
    }

    #[test]
    fn banded_dominance_collapses_near_duplicates() {
        let grid = grid1d(4);
        let a = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![x[0] + 1.0, 1.0]);
        // b sits within 5% above a everywhere: a band-dominates it at
        // ε = 0.1 but not exactly and not at ε = 0.01.
        let b = GridCost::from_closure(Arc::clone(&grid), 2, |x| vec![(x[0] + 1.0) * 1.05, 1.05]);
        assert!(!b.dominates_everywhere(&a));
        assert!(b.dominates_everywhere_banded(&a, 1.1));
        assert!(!b.dominates_everywhere_banded(&a, 1.01));
        // band == 1.0 is the exact test on every pair.
        assert_eq!(
            a.dominates_everywhere_banded(&b, 1.0),
            a.dominates_everywhere(&b)
        );
        // Banded halfspaces widen the exact dominance region: where a = σ
        // meets c = 0.25, the banded split boundary moves right.
        let grid1 = grid1d(1);
        let f = GridCost::from_closure(Arc::clone(&grid1), 1, |x| vec![x[0]]);
        let g = GridCost::from_closure(Arc::clone(&grid1), 1, |_| vec![0.25]);
        match f.dominance_halfspaces_banded(&g, 0, 1.2) {
            DominanceHalfspaces::Split(hs) => {
                // f ≤ 1.2·g exactly on [0, 0.3].
                assert!(hs.iter().all(|h| h.contains(&[0.29])));
                assert!(!hs.iter().all(|h| h.contains(&[0.31])));
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn conversion_to_multi_cost_fn_agrees() {
        let grid = Arc::new(ParamGrid::new(&[0.0, 0.0], &[1.0, 1.0], 2).unwrap());
        let g = GridCost::from_closure(Arc::clone(&grid), 2, |x| {
            vec![x[0] * x[1] + 1.0, 2.0 - x[0]]
        });
        let mc = g.to_multi_cost_fn();
        for p in mpq_geometry::grid::lattice(&[0.0, 0.0], &[1.0, 1.0], 5) {
            let gv = g.eval(&p);
            let mv = mc.eval(&p).unwrap();
            assert!((gv[0] - mv[0]).abs() < 1e-9 && (gv[1] - mv[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn piece_roundtrips_through_flat_storage() {
        let grid = grid1d(2);
        let f = GridCost::new(
            Arc::clone(&grid),
            vec![vec![
                LinearFn::new(vec![1.5], 0.5),
                LinearFn::new(vec![-2.0], 3.0),
            ]],
        );
        assert_eq!(f.piece(0, 0), LinearFn::new(vec![1.5], 0.5));
        assert_eq!(f.piece(0, 1), LinearFn::new(vec![-2.0], 3.0));
    }

    #[test]
    #[should_panic(expected = "share one ParamGrid")]
    fn adding_across_grids_panics() {
        let a = GridCost::zero(grid1d(2), 1);
        let b = GridCost::zero(grid1d(2), 1);
        let _ = a.add(&b);
    }
}
