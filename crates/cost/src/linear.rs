//! Single linear cost pieces.

use mpq_lp::dense::dot;

/// A linear function `x ↦ b + w · x` on the parameter space.
///
/// This is one *piece* of a piecewise-linear cost function: the paper's
/// Figure 9 stores, per piece, a weight vector `w` (one weight per
/// parameter) and a scalar base cost `b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFn {
    /// Weight per parameter.
    pub w: Vec<f64>,
    /// Base cost.
    pub b: f64,
}

impl LinearFn {
    /// Creates `b + w · x`.
    pub fn new(w: Vec<f64>, b: f64) -> Self {
        Self { w, b }
    }

    /// The constant function `b` on a `dim`-dimensional space.
    pub fn constant(dim: usize, b: f64) -> Self {
        Self {
            w: vec![0.0; dim],
            b,
        }
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.w.len()
    }

    /// Evaluates the function at `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.b + dot(&self.w, x)
    }

    /// Component-wise sum (Figure 11 of the paper: weight vectors and base
    /// costs add within a shared linear region).
    pub fn add(&self, other: &LinearFn) -> LinearFn {
        debug_assert_eq!(self.dim(), other.dim());
        LinearFn {
            w: self.w.iter().zip(&other.w).map(|(a, b)| a + b).collect(),
            b: self.b + other.b,
        }
    }

    /// In-place sum.
    pub fn add_assign(&mut self, other: &LinearFn) {
        debug_assert_eq!(self.dim(), other.dim());
        for (a, b) in self.w.iter_mut().zip(&other.w) {
            *a += b;
        }
        self.b += other.b;
    }

    /// The difference `self − other`.
    pub fn sub(&self, other: &LinearFn) -> LinearFn {
        debug_assert_eq!(self.dim(), other.dim());
        LinearFn {
            w: self.w.iter().zip(&other.w).map(|(a, b)| a - b).collect(),
            b: self.b - other.b,
        }
    }

    /// Scales values by `k`.
    pub fn scale(&self, k: f64) -> LinearFn {
        LinearFn {
            w: self.w.iter().map(|v| v * k).collect(),
            b: self.b * k,
        }
    }

    /// Adds a constant offset.
    pub fn add_const(&self, c: f64) -> LinearFn {
        LinearFn {
            w: self.w.clone(),
            b: self.b + c,
        }
    }

    /// Parameter-value-independent dominance (§6.3 of the paper): true iff
    /// every weight and the base cost of `self` are ≤ those of `other`,
    /// which implies `self(x) ≤ other(x)` for all non-negative `x`.
    pub fn dominates_pvi(&self, other: &LinearFn, tol: f64) -> bool {
        self.b <= other.b + tol && self.w.iter().zip(&other.w).all(|(a, b)| *a <= *b + tol)
    }

    /// Exact box dominance: true iff `self(x) ≤ other(x)` for every `x` in
    /// the box `[lo, hi]`. Uses the closed form for the maximum of a linear
    /// function over a box (no LP needed).
    pub fn le_on_box(&self, other: &LinearFn, lo: &[f64], hi: &[f64], tol: f64) -> bool {
        let d = self.sub(other);
        let mut max = d.b;
        for j in 0..d.w.len() {
            max += if d.w[j] >= 0.0 {
                d.w[j] * hi[j]
            } else {
                d.w[j] * lo[j]
            };
        }
        max <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_add() {
        let f = LinearFn::new(vec![2.0, -1.0], 3.0);
        assert_eq!(f.eval(&[1.0, 1.0]), 4.0);
        let g = LinearFn::new(vec![1.0, 1.0], -1.0);
        let s = f.add(&g);
        assert_eq!(
            s.eval(&[1.0, 1.0]),
            f.eval(&[1.0, 1.0]) + g.eval(&[1.0, 1.0])
        );
    }

    #[test]
    fn scale_and_const() {
        let f = LinearFn::new(vec![2.0], 1.0);
        assert_eq!(f.scale(2.0).eval(&[1.0]), 6.0);
        assert_eq!(f.add_const(5.0).eval(&[1.0]), 8.0);
    }

    #[test]
    fn pvi_dominance() {
        let cheap = LinearFn::new(vec![1.0, 1.0], 0.0);
        let pricey = LinearFn::new(vec![2.0, 1.0], 1.0);
        assert!(cheap.dominates_pvi(&pricey, 1e-9));
        assert!(!pricey.dominates_pvi(&cheap, 1e-9));
        // Crossing functions dominate p.v.i. in neither direction.
        let a = LinearFn::new(vec![1.0, 0.0], 1.0);
        let b = LinearFn::new(vec![0.0, 1.0], 1.0);
        assert!(!a.dominates_pvi(&b, 1e-9) && !b.dominates_pvi(&a, 1e-9));
    }

    #[test]
    fn box_dominance_is_exact() {
        // f = x, g = 1 − x on [0, 1]: neither dominates on the box,
        // but f ≤ g on [0, 0.5].
        let f = LinearFn::new(vec![1.0], 0.0);
        let g = LinearFn::new(vec![-1.0], 1.0);
        assert!(!f.le_on_box(&g, &[0.0], &[1.0], 1e-9));
        assert!(f.le_on_box(&g, &[0.0], &[0.5], 1e-9));
        // Box dominance is strictly stronger than the p.v.i. test: a larger
        // weight can be compensated by a larger base cost on a bounded box.
        let a = LinearFn::new(vec![2.0], 0.0);
        let b = LinearFn::new(vec![1.0], 5.0);
        assert!(a.le_on_box(&b, &[0.0], &[1.0], 1e-9));
        assert!(!a.dominates_pvi(&b, 1e-9));
    }
}
