//! Multi-objective piecewise-linear cost functions for MPQ.
//!
//! In the MPQ model (Trummer & Koch, VLDB 2014, Section 2) the cost of a
//! query plan is a vector-valued function `c(p) : X → Rᵐ` mapping parameter
//! vectors (e.g. predicate selectivities) to one value per cost metric
//! (e.g. execution time and monetary fees). The PWL-MPQ restriction assumes
//! each component is **piecewise linear**: linear on convex polytopes that
//! partition the parameter space (Figure 9 of the paper).
//!
//! This crate implements the cost-function side of PWL-RRPA:
//!
//! * [`LinearFn`] — a single linear piece `b + w · x`;
//! * [`PwlFn`] — a general piecewise-linear function over arbitrary
//!   polytope pieces, with addition, scaling, pointwise min/max (Figure 11
//!   and the `AccumulateCost` function of Algorithm 3);
//! * [`MultiCostFn`] — one [`PwlFn`] per metric, with the dominance-region
//!   computation `Dom` of Algorithm 3;
//! * [`GridCost`] — the grid-aligned representation used by the optimizer:
//!   every function in a run is linear on the *same* simplices of a shared
//!   [`mpq_geometry::grid::ParamGrid`], so accumulation is per-simplex
//!   weight addition and all dominance geometry stays local to a simplex;
//! * [`approx`] — interpolation of arbitrary cost closures onto a grid
//!   (exact at grid vertices, exact everywhere for affine closures).

pub mod approx;
pub mod cache;
mod grid_cost;
mod linear;
mod multi;
mod pwl;

pub use cache::{CacheStats, LiftedCostCache};
pub use grid_cost::{
    DominanceHalfspaces, GridCost, HalfspaceList, MetricOnSimplex, SimplexDominance,
};
pub use linear::LinearFn;
pub use multi::MultiCostFn;
pub use pwl::{LinearPiece, PwlFn};

/// Identifies a cost metric by position (0-based) in a cost vector.
///
/// Metric *names* and semantics (time, fees, precision loss, …) are owned
/// by the cost model that produces the functions; this crate only needs the
/// arity.
pub type MetricIdx = usize;

/// Evaluated cost vector, one entry per metric. Lower is better for every
/// metric (qualities like result precision are modelled as losses, see
/// Section 2 of the paper).
pub type CostVec = Vec<f64>;

/// True iff `a` dominates `b`: `a ≤ b` in every component (within `tol`).
pub fn dominates(a: &[f64], b: &[f64], tol: f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| *x <= *y + tol)
}

/// True iff `a` strictly dominates `b`: `a` dominates `b` and is strictly
/// smaller in at least one component.
pub fn strictly_dominates(a: &[f64], b: &[f64], tol: f64) -> bool {
    dominates(a, b, tol) && a.iter().zip(b).any(|(x, y)| *x < *y - tol)
}

/// True iff `a` **(1+ε)-band dominates** `b`: `a ≤ band · b` in every
/// component (within `tol`), where `band = 1 + ε ≥ 1`. With `band == 1.0`
/// this is exactly [`dominates`] (the multiplication by `1.0` is an IEEE
/// identity), so the exact path is the ε = 0 special case bit for bit.
/// Metric-generic: costs are non-negative by the MPQ model (Section 2 of
/// the paper — qualities are modelled as losses), which is what makes the
/// multiplicative band a *relaxation* of exact dominance.
pub fn dominates_banded(a: &[f64], b: &[f64], band: f64, tol: f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(band >= 1.0, "dominance band must be ≥ 1");
    a.iter().zip(b).all(|(x, y)| *x <= band * *y + tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_on_vectors() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0], 1e-9));
        assert!(!dominates(&[1.0, 4.0], &[1.0, 3.0], 1e-9));
        assert!(strictly_dominates(&[1.0, 2.0], &[1.0, 3.0], 1e-9));
        assert!(!strictly_dominates(&[1.0, 3.0], &[1.0, 3.0], 1e-9));
        // Equal vectors dominate each other non-strictly.
        assert!(dominates(&[2.0], &[2.0], 1e-9));
    }

    #[test]
    fn banded_dominance_relaxes_exact() {
        // 1.05 does not dominate 1.0 exactly, but does within a 10% band.
        assert!(!dominates(&[1.05], &[1.0], 1e-9));
        assert!(dominates_banded(&[1.05], &[1.0], 1.1, 1e-9));
        assert!(!dominates_banded(&[1.2], &[1.0], 1.1, 1e-9));
        // band == 1.0 is exact dominance on every input.
        for (a, b) in [([1.0, 2.0], [1.0, 3.0]), ([1.0, 4.0], [1.0, 3.0])] {
            assert_eq!(dominates_banded(&a, &b, 1.0, 1e-9), dominates(&a, &b, 1e-9));
        }
    }
}
