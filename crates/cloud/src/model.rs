//! The cost-model interface consumed by the optimizer, and the Cloud
//! implementation.
//!
//! A [`ParametricCostModel`] enumerates the physical alternatives for scans
//! and joins and prices each alternative with a **closure over the
//! parameter vector** `x`. The optimizer lifts these closures onto its
//! piecewise-linear representation (grid interpolation), so models are free
//! to use arbitrary non-linear formulas.
//!
//! Costs are *incremental* per Algorithm 1's `AccumulateCost`: a join
//! alternative prices only the final join operation; the optimizer adds the
//! accumulated costs of the two sub-plans.

use crate::join::{parallel_hash_join_cost, single_node_hash_join_cost, JoinStats};
use crate::ops::{JoinOp, ScanOp};
use crate::scan::{index_seek_cost, table_scan_cost};
use crate::shape::{tag, OpShape};
use crate::{ClusterConfig, NUM_METRICS};
use mpq_catalog::{Query, Selectivity, TableSet};

/// A cost closure: parameter vector ↦ one value per metric.
pub type CostClosure = Box<dyn Fn(&[f64]) -> Vec<f64> + Send + Sync>;

/// One physical alternative for scanning a base table.
pub struct ScanAlternative {
    /// Operator descriptor (used in plan display).
    pub op: ScanOp,
    /// Full cost of the scan as a function of the parameters.
    pub cost: CostClosure,
    /// Canonical identity of the cost shape, if the closure's output is
    /// fully determined by it (see [`crate::shape`]); keys the cross-query
    /// cost-lifting cache. `None` opts out of caching.
    pub shape: Option<OpShape>,
}

/// One physical alternative for the final join of two table sets.
pub struct JoinAlternative {
    /// Operator descriptor (used in plan display).
    pub op: JoinOp,
    /// Incremental cost of the join operation itself as a function of the
    /// parameters (sub-plan costs are accumulated by the optimizer).
    pub cost: CostClosure,
    /// Canonical identity of the cost shape (see
    /// [`ScanAlternative::shape`]).
    pub shape: Option<OpShape>,
}

/// Interface between cost models and the optimizer.
///
/// Implementations must be deterministic: the optimizer may call the
/// closures many times (once per grid vertex).
pub trait ParametricCostModel: Send + Sync {
    /// Number of cost metrics (must match every closure's output arity).
    fn num_metrics(&self) -> usize;

    /// Human-readable metric names, e.g. `["time", "fees"]`.
    fn metric_names(&self) -> Vec<&'static str>;

    /// Physical alternatives for scanning `table` of `query`.
    fn scan_alternatives(&self, query: &Query, table: usize) -> Vec<ScanAlternative>;

    /// Physical alternatives for joining `left` (build side) with `right`
    /// (probe side). Alternatives may differ between orientations — the
    /// optimizer enumerates both.
    fn join_alternatives(
        &self,
        query: &Query,
        left: TableSet,
        right: TableSet,
    ) -> Vec<JoinAlternative>;

    /// Canonical identity of the **whole optimization subproblem** over
    /// `tables` of `query` — the key of the shared-subplan cache
    /// (`mpq_core::rrpa`).
    ///
    /// # Soundness contract
    ///
    /// A model may return `Some` **only if** the shape words determine —
    /// given the model instance — every input the per-subtree dynamic
    /// program reads: all scan alternatives of the member tables, all
    /// join alternatives of every split of every subset, all internal
    /// cardinality/row-width statistics (in their *storage order*, since
    /// floating-point folds are order-sensitive), and the join-graph
    /// connectivity used for Cartesian-product postponement. Member
    /// tables are identified by their **rank** within `tables`
    /// ([`TableSet::rank_of`]) so structurally identical subtrees over
    /// different base-table indices share a key; parameter indices stay
    /// **global**, because cached cost functions live in the session's
    /// shared parameter space. Models that cannot key a subtree exactly
    /// return `None` (the default) and simply opt out of subplan sharing.
    fn subtree_shape(&self, _query: &Query, _tables: TableSet) -> Option<OpShape> {
        None
    }
}

/// The paper's Cloud scenario: execution time and monetary fees
/// ([`crate::METRIC_TIME`], [`crate::METRIC_FEES`]).
#[derive(Debug, Clone, Default)]
pub struct CloudCostModel {
    /// Cluster hardware/pricing profile.
    pub cluster: ClusterConfig,
}

impl CloudCostModel {
    /// A model over the given cluster profile.
    pub fn new(cluster: ClusterConfig) -> Self {
        Self { cluster }
    }
}

impl ParametricCostModel for CloudCostModel {
    fn num_metrics(&self) -> usize {
        NUM_METRICS
    }

    fn metric_names(&self) -> Vec<&'static str> {
        vec!["time (s)", "fees (USD)"]
    }

    fn scan_alternatives(&self, query: &Query, table: usize) -> Vec<ScanAlternative> {
        let rows = query.tables[table].rows;
        let row_bytes = query.tables[table].row_bytes;
        let cluster = self.cluster.clone();
        let mut out = Vec::with_capacity(2);
        // Full scan: reads everything, selectivity-independent.
        let scan_cost = table_scan_cost(&cluster, rows, row_bytes);
        out.push(ScanAlternative {
            op: ScanOp::TableScan,
            cost: Box::new(move |_x| scan_cost.clone()),
            shape: Some(OpShape::new(tag::TABLE_SCAN).scalar(rows).scalar(row_bytes)),
        });
        // Index seek: only available when the table has a predicate to
        // drive the index (paper: indices exist per predicate column).
        if query.predicates_on(table).next().is_some() {
            let matching = query.base_card(table);
            let cluster = self.cluster.clone();
            out.push(ScanAlternative {
                op: ScanOp::IndexSeek,
                cost: Box::new(move |x| index_seek_cost(&cluster, matching.eval(x))),
                shape: Some(OpShape::new(tag::INDEX_SEEK).card(&matching)),
            });
        }
        out
    }

    fn join_alternatives(
        &self,
        query: &Query,
        left: TableSet,
        right: TableSet,
    ) -> Vec<JoinAlternative> {
        let build = query.join_card(left);
        let probe = query.join_card(right);
        let output = query.join_card(left.union(right));
        let build_row_bytes = query.row_bytes(left);
        let probe_row_bytes = query.row_bytes(right);
        let stats_at = move |x: &[f64]| JoinStats {
            build_rows: build.eval(x),
            build_row_bytes,
            probe_rows: probe.eval(x),
            probe_row_bytes,
            out_rows: output.eval(x),
        };
        let c1 = self.cluster.clone();
        let c2 = self.cluster.clone();
        // Both join closures are pure in the operand/output cardinality
        // monomials and the two row widths.
        let join_shape = |t: u64| {
            Some(
                OpShape::new(t)
                    .card(&build)
                    .card(&probe)
                    .card(&output)
                    .scalar(build_row_bytes)
                    .scalar(probe_row_bytes),
            )
        };
        vec![
            JoinAlternative {
                op: JoinOp::SingleNodeHash,
                cost: Box::new(move |x| single_node_hash_join_cost(&c1, &stats_at(x))),
                shape: join_shape(tag::SINGLE_NODE_HASH),
            },
            JoinAlternative {
                op: JoinOp::ParallelHash,
                cost: Box::new(move |x| parallel_hash_join_cost(&c2, &stats_at(x))),
                shape: join_shape(tag::PARALLEL_HASH),
            },
        ]
    }

    /// Every Cloud cost input is catalog statistics: per-table
    /// cardinalities and row widths, predicate selectivities (fixed bits
    /// or global parameter index) and join-edge selectivities. Folding
    /// them — members by rank, predicates and edges in storage order —
    /// therefore determines every scan/join alternative and every
    /// cardinality monomial the subtree DP can form, which is exactly the
    /// soundness contract. The cluster profile is fixed per model
    /// instance, like for operator shapes.
    fn subtree_shape(&self, query: &Query, tables: TableSet) -> Option<OpShape> {
        let rank = |t: usize| tables.rank_of(t).expect("subtree member") as u64;
        let mut shape = OpShape::new(tag::SUBTREE_BASE)
            .word(tables.len() as u64)
            .word(query.num_params as u64);
        for t in tables.iter() {
            shape = shape
                .scalar(query.tables[t].rows)
                .scalar(query.tables[t].row_bytes);
        }
        // Section lengths are folded in so adjacent variable-length
        // sections can never alias across different subtree structures.
        let preds = query.predicates.iter().filter(|p| tables.contains(p.table));
        shape = shape.word(preds.clone().count() as u64);
        for p in preds {
            shape = shape.word(rank(p.table));
            shape = match p.selectivity {
                Selectivity::Fixed(s) => shape.word(0).scalar(s),
                Selectivity::Param(i) => shape.word(1).word(i as u64),
            };
        }
        let joins = query
            .joins
            .iter()
            .filter(|j| tables.contains(j.t1) && tables.contains(j.t2));
        shape = shape.word(joins.clone().count() as u64);
        for j in joins {
            shape = shape
                .word(rank(j.t1))
                .word(rank(j.t2))
                .scalar(j.selectivity);
        }
        Some(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{METRIC_FEES, METRIC_TIME};
    use mpq_catalog::{JoinEdge, Predicate, Selectivity, Table};

    fn query() -> Query {
        Query {
            tables: vec![
                Table {
                    name: "A".into(),
                    rows: 50_000.0,
                    row_bytes: 100.0,
                },
                Table {
                    name: "B".into(),
                    rows: 80_000.0,
                    row_bytes: 100.0,
                },
            ],
            predicates: vec![Predicate {
                table: 0,
                selectivity: Selectivity::Param(0),
            }],
            joins: vec![JoinEdge {
                t1: 0,
                t2: 1,
                selectivity: 1e-4,
            }],
            num_params: 1,
        }
    }

    #[test]
    fn scan_alternatives_depend_on_predicates() {
        let m = CloudCostModel::default();
        let q = query();
        let with_pred = m.scan_alternatives(&q, 0);
        assert_eq!(with_pred.len(), 2, "scan + index seek");
        let without_pred = m.scan_alternatives(&q, 1);
        assert_eq!(without_pred.len(), 1, "scan only");
    }

    #[test]
    fn index_seek_tracks_parameter() {
        let m = CloudCostModel::default();
        let q = query();
        let alts = m.scan_alternatives(&q, 0);
        let seek = alts
            .iter()
            .find(|a| a.op == ScanOp::IndexSeek)
            .expect("index seek available");
        let lo = (seek.cost)(&[0.01]);
        let hi = (seek.cost)(&[0.9]);
        assert!(lo[METRIC_TIME] < hi[METRIC_TIME]);
        let scan = alts
            .iter()
            .find(|a| a.op == ScanOp::TableScan)
            .expect("table scan available");
        let scan_cost = (scan.cost)(&[0.5]);
        assert!(lo[METRIC_TIME] < scan_cost[METRIC_TIME]);
        assert!(hi[METRIC_TIME] > scan_cost[METRIC_TIME]);
    }

    #[test]
    fn join_alternatives_trade_time_for_fees() {
        let m = CloudCostModel::default();
        let q = query();
        let alts = m.join_alternatives(&q, TableSet::singleton(0), TableSet::singleton(1));
        assert_eq!(alts.len(), 2);
        let x = [1.0];
        let single = alts
            .iter()
            .find(|a| a.op == JoinOp::SingleNodeHash)
            .map(|a| (a.cost)(&x))
            .unwrap();
        let parallel = alts
            .iter()
            .find(|a| a.op == JoinOp::ParallelHash)
            .map(|a| (a.cost)(&x))
            .unwrap();
        assert!(parallel[METRIC_FEES] > single[METRIC_FEES]);
    }

    /// Structurally identical subtrees key identically even when they sit
    /// on different global table indices — the rank-relabeling at the
    /// heart of cross-query subplan sharing.
    #[test]
    fn subtree_shape_is_embedding_invariant() {
        let m = CloudCostModel::default();
        let table = |rows: f64| Table {
            name: "T".into(),
            rows,
            row_bytes: 100.0,
        };
        // q1: the subtree lives on tables {0, 1}.
        let q1 = Query {
            tables: vec![table(50_000.0), table(80_000.0)],
            predicates: vec![Predicate {
                table: 0,
                selectivity: Selectivity::Param(0),
            }],
            joins: vec![JoinEdge {
                t1: 0,
                t2: 1,
                selectivity: 1e-4,
            }],
            num_params: 1,
        };
        // q2: the same subtree embedded on tables {1, 2} of a wider query.
        let q2 = Query {
            tables: vec![table(999.0), table(50_000.0), table(80_000.0)],
            predicates: vec![Predicate {
                table: 1,
                selectivity: Selectivity::Param(0),
            }],
            joins: vec![JoinEdge {
                t1: 1,
                t2: 2,
                selectivity: 1e-4,
            }],
            num_params: 1,
        };
        let s1 = m.subtree_shape(&q1, TableSet(0b011)).unwrap();
        let s2 = m.subtree_shape(&q2, TableSet(0b110)).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.stable_hash(), s2.stable_hash());
    }

    #[test]
    fn subtree_shape_distinguishes_content() {
        let m = CloudCostModel::default();
        let q = query();
        let all = TableSet(0b11);
        let base = m.subtree_shape(&q, all).unwrap();
        // Different join selectivity → different key.
        let mut q2 = q.clone();
        q2.joins[0].selectivity = 2e-4;
        assert_ne!(m.subtree_shape(&q2, all).unwrap(), base);
        // Different global parameter index → different key (cached costs
        // live in the session's global parameter space).
        let mut q3 = q.clone();
        q3.predicates[0].selectivity = Selectivity::Param(1);
        q3.num_params = 2;
        assert_ne!(m.subtree_shape(&q3, all).unwrap(), base);
        // Dropping the predicate changes the key.
        let mut q4 = q.clone();
        q4.predicates.clear();
        q4.num_params = 0;
        assert_ne!(m.subtree_shape(&q4, all).unwrap(), base);
        // A single-table subtree ignores content outside the set.
        let t0 = TableSet(0b01);
        assert_eq!(
            m.subtree_shape(&q, t0).unwrap(),
            m.subtree_shape(&q2, t0).unwrap(),
            "join selectivity outside the subtree must not leak in"
        );
    }

    #[test]
    fn metric_arity_matches() {
        let m = CloudCostModel::default();
        assert_eq!(m.num_metrics(), 2);
        assert_eq!(m.metric_names().len(), 2);
        let q = query();
        for a in m.scan_alternatives(&q, 0) {
            assert_eq!((a.cost)(&[0.5]).len(), 2);
        }
    }
}
