//! Join operator cost formulas.
//!
//! These are the "standard formulas" of the paper's §7 setup, reproducing
//! the Figure 7 structure: the single-node hash join wins on small inputs
//! (no shuffle, no start-up), the parallel hash join wins on large inputs
//! (work divided over nodes, per-node build side fits memory), and the
//! parallel join always accrues more **total** work — hence higher fees.

use crate::{ClusterConfig, METRIC_FEES, METRIC_TIME, NUM_METRICS};

/// Inputs to a join cost formula: concrete (already parameter-evaluated)
/// statistics of the build side, probe side and output.
#[derive(Debug, Clone, Copy)]
pub struct JoinStats {
    /// Build-side row count.
    pub build_rows: f64,
    /// Build-side row width in bytes.
    pub build_row_bytes: f64,
    /// Probe-side row count.
    pub probe_rows: f64,
    /// Probe-side row width in bytes.
    pub probe_row_bytes: f64,
    /// Output row count.
    pub out_rows: f64,
}

impl JoinStats {
    fn build_bytes(&self) -> f64 {
        self.build_rows * self.build_row_bytes
    }

    fn probe_bytes(&self) -> f64 {
        self.probe_rows * self.probe_row_bytes
    }

    /// Pure CPU work of the hash join (seconds of machine time).
    fn cpu_work(&self, c: &ClusterConfig) -> f64 {
        self.build_rows * c.hash_build_sec
            + self.probe_rows * c.hash_probe_sec
            + self.out_rows * c.cpu_tuple_sec
    }

    /// Extra Grace-partitioning I/O when the build side exceeds `memory`:
    /// every pass beyond the first re-reads and re-writes both inputs.
    fn spill_work(&self, c: &ClusterConfig, memory: f64) -> f64 {
        let passes = (self.build_bytes() / memory).ceil().max(1.0);
        if passes <= 1.0 {
            0.0
        } else {
            (passes - 1.0) * (self.build_bytes() + self.probe_bytes()) * c.spill_penalty
                / c.scan_bytes_per_sec
        }
    }
}

/// Cost of the single-node hash join. Returns `[time, fees]`.
///
/// All input data resides on one node (paper's assumption), so there is no
/// network cost; the single node performs all CPU work plus any spill I/O.
pub fn single_node_hash_join_cost(c: &ClusterConfig, s: &JoinStats) -> Vec<f64> {
    let work = s.cpu_work(c) + s.spill_work(c, c.node_memory_bytes);
    let mut out = vec![0.0; NUM_METRICS];
    out[METRIC_TIME] = work;
    out[METRIC_FEES] = c.fees(work);
    out
}

/// Cost of the parallel hash join over `c.parallel_nodes` nodes. Returns
/// `[time, fees]`.
///
/// Both inputs are shuffled across the network (each node sends/receives
/// its partition concurrently, so shuffle wall-time divides by the node
/// count while shuffle *work* does not). CPU work divides across nodes;
/// each node's build partition only spills if it exceeds node memory.
/// Fees are charged for the total machine time over all nodes, including
/// start-up — strictly more total work than the single-node join.
pub fn parallel_hash_join_cost(c: &ClusterConfig, s: &JoinStats) -> Vec<f64> {
    let n = c.parallel_nodes.max(2) as f64;
    let shuffle_bytes = s.build_bytes() + s.probe_bytes();
    let shuffle_work = shuffle_bytes / c.network_bytes_per_sec;
    let cpu_work = s.cpu_work(c);
    let per_node = JoinStats {
        build_rows: s.build_rows / n,
        probe_rows: s.probe_rows / n,
        out_rows: s.out_rows / n,
        ..*s
    };
    let spill_per_node = per_node.spill_work(c, c.node_memory_bytes);

    let wall = c.startup_sec_per_node + shuffle_work / n + cpu_work / n + spill_per_node;
    let machine = n * c.startup_sec_per_node + shuffle_work + cpu_work + n * spill_per_node;

    let mut out = vec![0.0; NUM_METRICS];
    out[METRIC_TIME] = wall;
    out[METRIC_FEES] = c.fees(machine);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(build_rows: f64, probe_rows: f64) -> JoinStats {
        JoinStats {
            build_rows,
            build_row_bytes: 100.0,
            probe_rows,
            probe_row_bytes: 100.0,
            out_rows: (build_rows * probe_rows * 1e-5).max(1.0),
        }
    }

    #[test]
    fn figure7_shape_single_node_wins_small() {
        let c = ClusterConfig::default();
        let small = stats(1_000.0, 1_000.0);
        let single = single_node_hash_join_cost(&c, &small);
        let parallel = parallel_hash_join_cost(&c, &small);
        assert!(
            single[METRIC_TIME] < parallel[METRIC_TIME],
            "single-node should be faster on small inputs: {} vs {}",
            single[METRIC_TIME],
            parallel[METRIC_TIME]
        );
    }

    #[test]
    fn figure7_shape_parallel_wins_large() {
        let c = ClusterConfig::default();
        let large = stats(5e7, 5e7);
        let single = single_node_hash_join_cost(&c, &large);
        let parallel = parallel_hash_join_cost(&c, &large);
        assert!(
            parallel[METRIC_TIME] < single[METRIC_TIME],
            "parallel should be faster on large inputs: {} vs {}",
            parallel[METRIC_TIME],
            single[METRIC_TIME]
        );
    }

    #[test]
    fn figure7_shape_parallel_costs_more_fees_in_memory_regime() {
        // The paper's invariant — "the total amount of work increases by
        // parallelization", so parallel fees always exceed single-node fees
        // — holds whenever the single-node build side fits in memory
        // (the paper's formulas have no spill term).
        let c = ClusterConfig::default();
        for (b, p) in [(100.0, 100.0), (1e4, 1e5), (1e6, 1e6), (1e7, 1e7)] {
            let s = stats(b, p);
            assert!(s.build_bytes() <= c.node_memory_bytes, "stay in regime");
            let single = single_node_hash_join_cost(&c, &s);
            let parallel = parallel_hash_join_cost(&c, &s);
            assert!(
                parallel[METRIC_FEES] > single[METRIC_FEES],
                "parallel fees must exceed single-node fees at ({b}, {p})"
            );
        }
    }

    #[test]
    fn spill_can_invert_the_fee_ordering() {
        // Our model extends the paper's with Grace-hash spill I/O once the
        // build side exceeds node memory. Parallelization splits the build
        // across nodes and avoids the spill, so for very large builds the
        // parallel join can be cheaper in *total* work too — a deliberate,
        // documented deviation from the in-memory invariant above.
        let c = ClusterConfig::default();
        let s = stats(5e7, 5e7); // 5 GB build > 3.75 GB memory
        assert!(s.build_bytes() > c.node_memory_bytes);
        let single = single_node_hash_join_cost(&c, &s);
        let parallel = parallel_hash_join_cost(&c, &s);
        assert!(parallel[METRIC_FEES] < single[METRIC_FEES]);
    }

    #[test]
    fn crossover_exists_between_extremes() {
        // Somewhere between the small and large regimes, the faster
        // implementation flips — this is the relevance-region boundary of
        // Figure 7.
        let c = ClusterConfig::default();
        let faster_is_single = |rows: f64| {
            let s = stats(rows, rows);
            single_node_hash_join_cost(&c, &s)[METRIC_TIME]
                < parallel_hash_join_cost(&c, &s)[METRIC_TIME]
        };
        assert!(faster_is_single(1_000.0));
        assert!(!faster_is_single(5e7));
        let mut lo = 1_000.0f64;
        let mut hi = 5e7f64;
        for _ in 0..60 {
            let mid = (lo * hi).sqrt();
            if faster_is_single(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        assert!(lo > 1_000.0 && hi < 5e7, "crossover strictly inside range");
    }

    #[test]
    fn spill_kicks_in_past_memory() {
        let c = ClusterConfig {
            node_memory_bytes: 1e6, // tiny memory to force spill
            ..ClusterConfig::default()
        };
        let fits = stats(5_000.0, 5_000.0); // 500 KB build
        let spills = stats(50_000.0, 5_000.0); // 5 MB build
        let t_fits = single_node_hash_join_cost(&c, &fits)[METRIC_TIME];
        let t_spills = single_node_hash_join_cost(&c, &spills)[METRIC_TIME];
        // More than 10x the build rows (CPU-linear) because of spill I/O.
        assert!(t_spills > 10.0 * t_fits);
    }
}
