//! Physical operator descriptors.

use serde::{Deserialize, Serialize};

/// Base-table access paths (paper §7: "Indices are available for each
/// column with a predicate").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScanOp {
    /// Sequential full-table scan; cost independent of selectivity.
    TableScan,
    /// Index lookup of matching rows; cost proportional to selectivity.
    IndexSeek,
    /// Scan of a table sample (approximate query processing, Scenario 2);
    /// the sampling rate is carried in permille so the operator stays
    /// `Eq`/`Hash`.
    SampledScan {
        /// Sampling rate in permille (e.g. `100` = 10% of the table).
        permille: u32,
    },
}

impl std::fmt::Display for ScanOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanOp::TableScan => write!(f, "TableScan"),
            ScanOp::IndexSeek => write!(f, "IndexSeek"),
            ScanOp::SampledScan { permille } => {
                write!(f, "SampledScan[{}%]", *permille as f64 / 10.0)
            }
        }
    }
}

/// Join implementations of the Cloud scenario (paper §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinOp {
    /// Hash join on a single node (no shuffle; may spill past memory).
    SingleNodeHash,
    /// Parallel hash join: shuffles both inputs, divides work over nodes,
    /// strictly more total work (higher fees).
    ParallelHash,
}

impl std::fmt::Display for JoinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinOp::SingleNodeHash => write!(f, "HashJoin[1-node]"),
            JoinOp::ParallelHash => write!(f, "HashJoin[parallel]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(ScanOp::TableScan.to_string(), "TableScan");
        assert_eq!(JoinOp::ParallelHash.to_string(), "HashJoin[parallel]");
    }
}
