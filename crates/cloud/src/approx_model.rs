//! Approximate-query-processing cost model (Scenario 2 of the paper).
//!
//! In approximate query processing, execution time can be traded against
//! **result precision** (paper §1, Scenario 2, citing BlinkDB): scanning
//! only a sample of a table is faster but degrades the answer. Precision is
//! a quality (higher is better), so per Section 2 it is modelled as
//! **precision loss** — a cost metric where lower is better.
//!
//! Operators:
//! * an **exact scan** (full cost, zero loss) and **sampled scans** at a
//!   set of sampling rates `r` (time scales with `r`; loss grows with
//!   `1 − r`);
//! * the same single-node/parallel hash joins as the Cloud model on the
//!   time metric; joins add no loss of their own but propagate it.
//!
//! Loss accumulates additively over operators, satisfying the Principle of
//! Optimality the completeness proof requires.
//!
//! Simplification: join alternatives are priced per operand *table set*
//! (the DP interface), so join inputs are costed at full cardinality even
//! below a sampled scan — a conservative upper bound on time. Sampling
//! therefore trades scan time and precision; making joins benefit from
//! sampled inputs would require cardinality to become part of per-plan
//! state, which the MPQ plan model (and the paper) does not track.

use crate::join::{parallel_hash_join_cost, single_node_hash_join_cost, JoinStats};
use crate::model::{CostClosure, JoinAlternative, ParametricCostModel, ScanAlternative};
use crate::ops::{JoinOp, ScanOp};
use crate::scan::{index_seek_cost, table_scan_cost};
use crate::shape::{tag, OpShape};
use crate::ClusterConfig;
use mpq_catalog::{Query, TableSet};

/// Metric index of precision loss in the approximate model.
pub const METRIC_LOSS: usize = 1;

/// Shape tags of this model's operators (distinct from the Cloud model's).
const T_EXACT_SCAN: u64 = tag::APPROX_BASE;
const T_SEEK: u64 = tag::APPROX_BASE + 1;
const T_SAMPLED: u64 = tag::APPROX_BASE + 2;
const T_SINGLE: u64 = tag::APPROX_BASE + 3;
const T_PARALLEL: u64 = tag::APPROX_BASE + 4;

/// Cost model trading execution time against result-precision loss.
#[derive(Debug, Clone)]
pub struct ApproxCostModel {
    /// Cluster profile used for the time metric.
    pub cluster: ClusterConfig,
    /// Available sampling rates (fractions of a table scanned), each
    /// yielding one sampled-scan alternative. Must lie in `(0, 1)`.
    pub sampling_rates: Vec<f64>,
    /// Loss incurred by sampling a table at rate `r` is
    /// `loss_scale · (1 − r)`.
    pub loss_scale: f64,
}

impl Default for ApproxCostModel {
    fn default() -> Self {
        Self {
            cluster: ClusterConfig::default(),
            sampling_rates: vec![0.01, 0.1, 0.5],
            loss_scale: 1.0,
        }
    }
}

fn with_loss(mut time_fees: Vec<f64>, loss: f64) -> Vec<f64> {
    // Reuse the time component of the Cloud formulas; replace fees by loss.
    time_fees[METRIC_LOSS] = loss;
    time_fees
}

impl ParametricCostModel for ApproxCostModel {
    fn num_metrics(&self) -> usize {
        2
    }

    fn metric_names(&self) -> Vec<&'static str> {
        vec!["time (s)", "precision loss"]
    }

    fn scan_alternatives(&self, query: &Query, table: usize) -> Vec<ScanAlternative> {
        let rows = query.tables[table].rows;
        let row_bytes = query.tables[table].row_bytes;
        let mut out: Vec<ScanAlternative> = Vec::with_capacity(2 + self.sampling_rates.len());

        // Exact full scan: zero loss.
        let exact = with_loss(table_scan_cost(&self.cluster, rows, row_bytes), 0.0);
        out.push(ScanAlternative {
            op: ScanOp::TableScan,
            cost: Box::new(move |_x| exact.clone()),
            shape: Some(OpShape::new(T_EXACT_SCAN).scalar(rows).scalar(row_bytes)),
        });
        // Exact index seek when a predicate exists: zero loss, parametric.
        if query.predicates_on(table).next().is_some() {
            let matching = query.base_card(table);
            let cluster = self.cluster.clone();
            out.push(ScanAlternative {
                op: ScanOp::IndexSeek,
                cost: Box::new(move |x| {
                    with_loss(index_seek_cost(&cluster, matching.eval(x)), 0.0)
                }),
                shape: Some(OpShape::new(T_SEEK).card(&matching)),
            });
        }
        // Sampled scans: cheaper, lossy. Modelled as table scans over the
        // sampled fraction.
        for &rate in &self.sampling_rates {
            debug_assert!((0.0..1.0).contains(&rate) && rate > 0.0);
            let cost = with_loss(
                table_scan_cost(&self.cluster, rows * rate, row_bytes),
                self.loss_scale * (1.0 - rate),
            );
            out.push(ScanAlternative {
                op: ScanOp::SampledScan {
                    permille: (rate * 1000.0).round() as u32,
                },
                cost: Box::new(move |_x| cost.clone()),
                shape: Some(
                    OpShape::new(T_SAMPLED)
                        .scalar(rows)
                        .scalar(row_bytes)
                        .scalar(rate),
                ),
            });
        }
        out
    }

    fn join_alternatives(
        &self,
        query: &Query,
        left: TableSet,
        right: TableSet,
    ) -> Vec<JoinAlternative> {
        let build = query.join_card(left);
        let probe = query.join_card(right);
        let output = query.join_card(left.union(right));
        let build_row_bytes = query.row_bytes(left);
        let probe_row_bytes = query.row_bytes(right);
        let stats_at = move |x: &[f64]| JoinStats {
            build_rows: build.eval(x),
            build_row_bytes,
            probe_rows: probe.eval(x),
            probe_row_bytes,
            out_rows: output.eval(x),
        };
        let c1 = self.cluster.clone();
        let c2 = self.cluster.clone();
        let single: CostClosure =
            Box::new(move |x| with_loss(single_node_hash_join_cost(&c1, &stats_at(x)), 0.0));
        let parallel: CostClosure =
            Box::new(move |x| with_loss(parallel_hash_join_cost(&c2, &stats_at(x)), 0.0));
        let join_shape = |t: u64| {
            Some(
                OpShape::new(t)
                    .card(&build)
                    .card(&probe)
                    .card(&output)
                    .scalar(build_row_bytes)
                    .scalar(probe_row_bytes),
            )
        };
        vec![
            JoinAlternative {
                op: JoinOp::SingleNodeHash,
                cost: single,
                shape: join_shape(T_SINGLE),
            },
            JoinAlternative {
                op: JoinOp::ParallelHash,
                cost: parallel,
                shape: join_shape(T_PARALLEL),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::METRIC_TIME;
    use mpq_catalog::{Predicate, Selectivity, Table};

    fn query() -> Query {
        Query {
            tables: vec![Table {
                name: "A".into(),
                rows: 100_000.0,
                row_bytes: 100.0,
            }],
            predicates: vec![Predicate {
                table: 0,
                selectivity: Selectivity::Param(0),
            }],
            joins: vec![],
            num_params: 1,
        }
    }

    #[test]
    fn sampled_scans_trade_time_for_loss() {
        let m = ApproxCostModel::default();
        let q = query();
        let alts = m.scan_alternatives(&q, 0);
        // Exact scan + index seek + 3 sampled scans.
        assert_eq!(alts.len(), 5);
        let costs: Vec<Vec<f64>> = alts.iter().map(|a| (a.cost)(&[0.5])).collect();
        let exact = &costs[0];
        assert_eq!(exact[METRIC_LOSS], 0.0);
        // Every sampled scan is faster than exact but lossy.
        for c in &costs[2..] {
            assert!(c[METRIC_TIME] < exact[METRIC_TIME]);
            assert!(c[METRIC_LOSS] > 0.0);
        }
        // Lower sampling rate → faster and lossier (Pareto frontier).
        assert!(costs[2][METRIC_TIME] < costs[4][METRIC_TIME]);
        assert!(costs[2][METRIC_LOSS] > costs[4][METRIC_LOSS]);
    }

    #[test]
    fn joins_add_no_loss() {
        let m = ApproxCostModel::default();
        let mut q = query();
        q.tables.push(Table {
            name: "B".into(),
            rows: 10_000.0,
            row_bytes: 100.0,
        });
        q.joins.push(mpq_catalog::JoinEdge {
            t1: 0,
            t2: 1,
            selectivity: 1e-4,
        });
        let alts = m.join_alternatives(&q, TableSet::singleton(0), TableSet::singleton(1));
        for a in alts {
            let c = (a.cost)(&[0.5]);
            assert_eq!(c[METRIC_LOSS], 0.0);
            assert!(c[METRIC_TIME] > 0.0);
        }
    }
}
