//! Scan operator cost formulas.

use crate::{ClusterConfig, METRIC_FEES, METRIC_TIME, NUM_METRICS};

/// Cost of a full table scan over `rows` rows of `row_bytes` bytes each.
///
/// The whole table is read regardless of predicate selectivity; predicates
/// are applied on the fly (one CPU touch per row). Returns
/// `[time, fees]`.
pub fn table_scan_cost(c: &ClusterConfig, rows: f64, row_bytes: f64) -> Vec<f64> {
    let io = rows * row_bytes / c.scan_bytes_per_sec;
    let cpu = rows * c.cpu_tuple_sec;
    let time = io + cpu;
    let mut out = vec![0.0; NUM_METRICS];
    out[METRIC_TIME] = time;
    out[METRIC_FEES] = c.fees(time); // one node busy for `time`
    out
}

/// Cost of an index seek retrieving `matching_rows` rows.
///
/// Each matching row costs one (amortised) random access plus a CPU touch,
/// so the cost is linear in the number of matches — and therefore linear in
/// the predicate-selectivity parameter. Returns `[time, fees]`.
pub fn index_seek_cost(c: &ClusterConfig, matching_rows: f64) -> Vec<f64> {
    let time = matching_rows * (c.index_seek_sec_per_row + c.cpu_tuple_sec);
    let mut out = vec![0.0; NUM_METRICS];
    out[METRIC_TIME] = time;
    out[METRIC_FEES] = c.fees(time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_cost_independent_of_selectivity() {
        let c = ClusterConfig::default();
        let a = table_scan_cost(&c, 10_000.0, 100.0);
        assert!(a[METRIC_TIME] > 0.0 && a[METRIC_FEES] > 0.0);
        // Fees are time priced at one node.
        assert!((a[METRIC_FEES] - c.fees(a[METRIC_TIME])).abs() < 1e-15);
    }

    #[test]
    fn seek_beats_scan_at_low_selectivity_only() {
        let c = ClusterConfig::default();
        let rows = 100_000.0;
        let row_bytes = 100.0;
        let scan = table_scan_cost(&c, rows, row_bytes);
        let seek_low = index_seek_cost(&c, rows * 0.01);
        let seek_high = index_seek_cost(&c, rows * 0.9);
        assert!(
            seek_low[METRIC_TIME] < scan[METRIC_TIME],
            "index seek should win at 1% selectivity"
        );
        assert!(
            seek_high[METRIC_TIME] > scan[METRIC_TIME],
            "full scan should win at 90% selectivity"
        );
    }

    #[test]
    fn seek_cost_is_linear_in_matches() {
        let c = ClusterConfig::default();
        let one = index_seek_cost(&c, 1000.0);
        let two = index_seek_cost(&c, 2000.0);
        assert!((two[METRIC_TIME] - 2.0 * one[METRIC_TIME]).abs() < 1e-12);
    }
}
