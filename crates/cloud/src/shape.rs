//! Canonical, hashable identities of operator cost shapes.
//!
//! A scan or join cost closure is a pure function of a handful of numeric
//! inputs — table cardinalities, row widths, parametric cardinality
//! monomials — plus the (session-fixed) cluster profile. Two closures with
//! the same inputs therefore lift to the *same* grid/PWL cost function, no
//! matter which query produced them. [`OpShape`] packs those inputs into a
//! canonical word list so identical cost shapes are recognizable across the
//! queries of a batch: it is the cache key of
//! `mpq_cost::cache::LiftedCostCache`, the cross-query cost-lifting cache
//! (the sharing idea of Kathuria & Sudarshan's multi-query optimization,
//! transferred to MPQ's lifting step).
//!
//! # Soundness contract
//!
//! A model attaches an `OpShape` to an alternative **only if** the shape
//! words determine the cost closure's output at every parameter vector,
//! given the model instance. Everything the closure captures must be
//! folded in: operator discriminants become [tag](OpShape::new) words,
//! scalars contribute their exact IEEE bit patterns
//! ([`OpShape::scalar`]), and parametric cardinalities contribute factor
//! bits *and* parameter mask ([`OpShape::card`]) — two monomials over
//! different parameters lift differently even with equal factors. Shapes
//! are only comparable within one model instance (an
//! `OptimizerSession` fixes the model, so cluster profiles and sampling
//! rates never need to enter the key). Alternatives whose cost cannot be
//! keyed exactly carry `None` and are simply lifted per query.

use mpq_catalog::card::CardExpr;

/// Operator tag words for [`crate::model::CloudCostModel`] shapes.
pub(crate) mod tag {
    /// Full table scan (Cloud model).
    pub const TABLE_SCAN: u64 = 1;
    /// Index seek (Cloud model).
    pub const INDEX_SEEK: u64 = 2;
    /// Single-node hash join (Cloud model).
    pub const SINGLE_NODE_HASH: u64 = 3;
    /// Parallel hash join (Cloud model).
    pub const PARALLEL_HASH: u64 = 4;
    /// Approximate model operators live in a distinct tag range so a
    /// Cloud shape can never alias an Approx shape.
    pub const APPROX_BASE: u64 = 16;
    /// Join-subtree identity (the shared-subplan cache key, see
    /// [`crate::model::ParametricCostModel::subtree_shape`]) — its own
    /// range so a subtree key can never alias an operator shape.
    pub const SUBTREE_BASE: u64 = 32;
}

/// Canonical identity of one operator's cost shape: an operator tag
/// followed by the exact bit patterns of every numeric input the cost
/// closure captures. `Eq`/`Hash` over the word list makes identical cost
/// functions recognizable across queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpShape {
    words: Vec<u64>,
}

impl OpShape {
    /// Starts a shape with an operator tag (unique per model + operator
    /// kind).
    pub fn new(tag: u64) -> Self {
        Self { words: vec![tag] }
    }

    /// Folds in a scalar input by its exact IEEE-754 bit pattern (`0.0`
    /// and `-0.0` differ — canonicalise upstream if that ever matters;
    /// catalog statistics are non-negative).
    pub fn scalar(mut self, v: f64) -> Self {
        self.words.push(v.to_bits());
        self
    }

    /// Folds in a parametric cardinality monomial: constant factor bits
    /// plus the parameter mask.
    pub fn card(mut self, c: &CardExpr) -> Self {
        self.words.push(c.factor.to_bits());
        self.words.push(c.param_mask);
        self
    }

    /// Folds in a raw word (discriminants, projection indices, …).
    pub fn word(mut self, w: u64) -> Self {
        self.words.push(w);
        self
    }

    /// A **stable** 64-bit digest of the shape (FNV-1a over the word
    /// list): unlike `std::hash::Hash` — whose output is explicitly
    /// unspecified across releases and processes — this value is a pure
    /// function of the shape words, so it can route work across processes
    /// or machines. It keys *shard affinity*: queries whose operators
    /// share shapes hash to the same shard, co-locating with the shard's
    /// cached lifts (see `mpq_core::session`).
    pub fn stable_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &w in &self.words {
            h = fnv1a_word(h, w);
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a step over a 64-bit word (byte-at-a-time, little-endian — the
/// byte order is pinned so the digest is identical on every platform).
fn fnv1a_word(mut h: u64, w: u64) -> u64 {
    for b in w.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-dependent combination of stable shape hashes into one affinity
/// word (FNV-1a over the digests). Used to derive a query's shard
/// affinity from the shapes of its operators.
pub fn combine_stable(hashes: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for x in hashes {
        h = fnv1a_word(h, x);
    }
    h
}

/// The same pinned FNV-1a digest over a raw byte slice — the
/// cross-process checksum the `mpq-net` wire format stamps on every
/// message body. Sharing one digest family (with [`combine_stable`] and
/// `OpShape::stable_hash`) means a single pinned constant governs every
/// cross-process identity in the workspace: shard affinity, fault-plan
/// keys, and frame integrity.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_equal_shapes() {
        let a = OpShape::new(tag::TABLE_SCAN).scalar(100.0).scalar(50.0);
        let b = OpShape::new(tag::TABLE_SCAN).scalar(100.0).scalar(50.0);
        assert_eq!(a, b);
        let c = OpShape::new(tag::TABLE_SCAN).scalar(100.0).scalar(51.0);
        assert_ne!(a, c);
        let d = OpShape::new(tag::INDEX_SEEK).scalar(100.0).scalar(50.0);
        assert_ne!(a, d);
    }

    #[test]
    fn card_masks_distinguish_parameters() {
        let c0 = CardExpr {
            factor: 10.0,
            param_mask: 0b01,
        };
        let c1 = CardExpr {
            factor: 10.0,
            param_mask: 0b10,
        };
        assert_ne!(
            OpShape::new(tag::INDEX_SEEK).card(&c0),
            OpShape::new(tag::INDEX_SEEK).card(&c1),
            "same factor, different parameter → different lifted function"
        );
    }

    #[test]
    fn stable_hash_is_pinned_and_input_sensitive() {
        let a = OpShape::new(tag::TABLE_SCAN).scalar(100.0).scalar(50.0);
        let b = OpShape::new(tag::TABLE_SCAN).scalar(100.0).scalar(50.0);
        assert_eq!(a.stable_hash(), b.stable_hash());
        let c = OpShape::new(tag::TABLE_SCAN).scalar(100.0).scalar(51.0);
        assert_ne!(a.stable_hash(), c.stable_hash());
        // The digest is part of the cross-process sharding contract —
        // changing the function silently re-shards every deployed
        // workload, so the empty-input value (the FNV-1a offset basis)
        // and the word-fold equivalence are pinned here.
        assert_eq!(combine_stable([]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            OpShape::new(1).word(2).word(3).stable_hash(),
            combine_stable([1, 2, 3]),
            "shape digest folds its words exactly like combine_stable"
        );
    }

    #[test]
    fn combine_stable_is_order_dependent() {
        assert_ne!(combine_stable([1, 2]), combine_stable([2, 1]));
        assert_eq!(combine_stable([7, 8, 9]), combine_stable([7, 8, 9]));
    }

    #[test]
    fn fnv1a_bytes_matches_word_fold_and_is_pinned() {
        // A word fed byte-at-a-time equals the word fold — the two views
        // of the one digest family can never drift apart.
        assert_eq!(
            fnv1a_bytes(&42u64.to_le_bytes()),
            combine_stable([42]),
            "byte digest and word fold agree on a word's LE bytes"
        );
        assert_eq!(fnv1a_bytes(&[]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a_bytes(b"ab"), fnv1a_bytes(b"ba"));
    }

    #[test]
    fn shapes_hash_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(OpShape::new(1).scalar(2.5), "a");
        assert_eq!(m.get(&OpShape::new(1).scalar(2.5)), Some(&"a"));
        assert_eq!(m.get(&OpShape::new(1).scalar(2.6)), None);
    }
}
