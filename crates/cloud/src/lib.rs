//! Execution cost models for MPQ, including the paper's Cloud scenario.
//!
//! Section 7 of the MPQ paper (Trummer & Koch, VLDB 2014) evaluates
//! PWL-RRPA in a Cloud setting with **two cost metrics** — execution time
//! and monetary fees — and two join implementations:
//!
//! * a **single-node hash join** (no network traffic; all input data is
//!   assumed to reside on one node), and
//! * a **parallel hash join** that shuffles both inputs across the network:
//!   faster for large inputs thanks to parallel processing, but with
//!   strictly more *total* work, hence always higher fees.
//!
//! Base-table access chooses between a **full table scan** (cost
//! independent of predicate selectivity) and an **index seek** (cost
//! proportional to matching rows — preferable at low selectivity). Since
//! selectivities are parameters, both alternatives must often be retained,
//! which is what makes the benchmark challenging (paper §7).
//!
//! The paper estimates costs with "standard formulas" and prices them with
//! Amazon EC2's pricing system on general-purpose medium instances; no
//! query is ever executed. This crate reproduces that estimation structure
//! with an EC2-m1.medium-like [`ClusterConfig`] profile (the substitution
//! is documented in `DESIGN.md` §4).
//!
//! The [`model::ParametricCostModel`] trait is the interface the optimizer
//! consumes: a model lists scan and join alternatives and returns each
//! alternative's cost as a **closure over the parameter vector**, which the
//! optimizer lifts onto its PWL representation. Two implementations ship:
//! [`model::CloudCostModel`] (time × fees, Scenario 1) and
//! [`approx_model::ApproxCostModel`] (time × result-precision loss,
//! Scenario 2 / approximate query processing).

pub mod approx_model;
pub mod join;
pub mod model;
pub mod ops;
pub mod scan;
pub mod shape;

use serde::{Deserialize, Serialize};

/// Metric index of execution time (seconds).
pub const METRIC_TIME: usize = 0;
/// Metric index of monetary fees (US dollars) in the Cloud model.
pub const METRIC_FEES: usize = 1;
/// Number of metrics in the Cloud model.
pub const NUM_METRICS: usize = 2;

/// Hardware and pricing profile of the simulated cluster.
///
/// Defaults follow an EC2 general-purpose medium (m1.medium-like) instance
/// as referenced by the paper: 3.75 GB of memory, on-demand pricing, a
/// gigabit-class network, and commodity sequential/random I/O rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Memory available to a join's build side per node, in bytes.
    pub node_memory_bytes: f64,
    /// On-demand price per node-hour in USD.
    pub price_per_node_hour: f64,
    /// Sequential scan bandwidth in bytes/second.
    pub scan_bytes_per_sec: f64,
    /// Cost of fetching one matching row through an index (seconds/row).
    pub index_seek_sec_per_row: f64,
    /// CPU cost of handling one tuple (seconds/tuple).
    pub cpu_tuple_sec: f64,
    /// CPU cost of inserting one tuple into a hash table (seconds/tuple).
    pub hash_build_sec: f64,
    /// CPU cost of probing one tuple against a hash table (seconds/tuple).
    pub hash_probe_sec: f64,
    /// Network bandwidth per node for shuffles, in bytes/second.
    pub network_bytes_per_sec: f64,
    /// Number of nodes used by the parallel hash join.
    pub parallel_nodes: usize,
    /// Wall-clock start-up/coordination cost per participating node
    /// (seconds) for parallel operators.
    pub startup_sec_per_node: f64,
    /// I/O penalty multiplier for Grace-hash-join spill passes when the
    /// build side exceeds memory.
    pub spill_penalty: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            node_memory_bytes: 3.75e9,
            price_per_node_hour: 0.087,
            scan_bytes_per_sec: 1.0e8,      // 100 MB/s sequential
            index_seek_sec_per_row: 4.0e-6, // amortised random access
            cpu_tuple_sec: 2.0e-7,
            hash_build_sec: 1.0e-6,
            hash_probe_sec: 5.0e-7,
            network_bytes_per_sec: 1.25e8, // 1 Gbit/s
            parallel_nodes: 8,
            startup_sec_per_node: 0.02,
            spill_penalty: 2.0,
        }
    }
}

impl ClusterConfig {
    /// Price of one machine-second in USD.
    pub fn price_per_node_sec(&self) -> f64 {
        self.price_per_node_hour / 3600.0
    }

    /// Converts machine-seconds of total work into fees.
    pub fn fees(&self, machine_seconds: f64) -> f64 {
        machine_seconds * self.price_per_node_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_sane() {
        let c = ClusterConfig::default();
        assert!(c.node_memory_bytes > 1e9);
        assert!(c.price_per_node_sec() > 0.0 && c.price_per_node_sec() < 1e-3);
        assert!((c.fees(3600.0) - 0.087).abs() < 1e-12);
    }
}
