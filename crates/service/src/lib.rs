//! `mpq-service`: a long-running, concurrent, **fault-tolerant**
//! optimizer service.
//!
//! The paper's value proposition is server-side: optimize once per
//! (query, shape), reuse the result across parameter instantiations and
//! arriving clients. The batch layer (`mpq_core::session`) already shares
//! cost lifts across the queries of one batch; this crate adds the
//! *service front-end* that turns arriving queries into batches:
//!
//! * **Batch accumulation** — arriving [`SubmittedQuery`]s buffer per
//!   shard and dispatch when either trigger of the [`BatchPolicy`] fires:
//!   the buffer reaches `max_batch` (*size* trigger) or the oldest
//!   buffered request has waited `max_wait` (*deadline* trigger —
//!   Trummer & Koch's randomized-MPQ line frames exactly this
//!   latency/quality trade-off: waiting longer buys more sharing).
//!   Shutdown flushes the rest (*drain* trigger).
//! * **Sharded sessions** — batches dispatch to one of N
//!   [`ShardedSession`] shards, chosen by the stable `OpShape`-derived
//!   affinity (`mpq_core::session::query_affinity`), so queries over the
//!   same tables land on the shard that already cached their lifted
//!   costs (the in-process form of sharding a workload across machines).
//! * **Completion tickets** — every submission returns a
//!   [`ServiceTicket`]; [`ServiceTicket::wait`] blocks on the request's
//!   own completion channel and **always returns**: the ticket resolves
//!   to a [`QueryOutcome`] (`Ok`, `Panicked`, `TimedOut`, `Rejected`,
//!   `Shutdown`) instead of panicking when the service cannot produce a
//!   solution.
//! * **Panic isolation & quarantine** — each batch runs under
//!   `catch_unwind`. When a query panics mid-batch, the shard worker
//!   bisects the batch (halving retries, recursion depth ≤ ⌈log₂ n⌉) to
//!   attribute the panic to the poison queries, answers *them* with
//!   [`QueryOutcome::Panicked`], re-runs the healthy remainder, and
//!   stays alive. One bad query can neither abort the process nor lose
//!   another query's answer.
//! * **Admission control** — [`ServiceConfig::max_queue`] bounds the
//!   buffered-but-undispatched request count; beyond it, `submit`
//!   answers the ticket immediately with [`QueryOutcome::Rejected`]
//!   (backpressure the caller can see) instead of queueing unboundedly.
//! * **Deadline budgets** — a per-query absolute deadline
//!   ([`SubmittedQuery::deadline`], service-clock seconds) is checked
//!   when the query's batch dispatches: already-expired queries are
//!   answered [`QueryOutcome::TimedOut`] without burning optimizer time.
//! * **ε-approximate serving** — an optional [`ApproxPolicy`] downgrades
//!   deadline-pressured batches to the ε-approximate optimizer
//!   (`SessionConfig::with_epsilon` semantics, per batch): the answers
//!   are `(1+ε)`-covers of the exact frontiers, each response is stamped
//!   [`QueryResponse::served_epsilon`], and [`ServiceStats`] counts
//!   `approx_served` / `approx_batches`. The ε choice is a pure function
//!   of the submission sequence, so virtual-clock replays reproduce it.
//! * **Bounded caches** — shard sessions built with a
//!   `SessionConfig::cache_capacity` evict deterministically
//!   (second-chance CLOCK, see `mpq_cost`), so a service that runs
//!   forever holds bounded memory.
//! * **Observability** — [`ServiceStats`] snapshots queue depth, batches
//!   formed, the trigger mix, rejected/timed-out/quarantined counts,
//!   per-shard cache hit/miss and restart counts, and p50/p95 latency
//!   measured under a **caller-supplied clock**. With a [`VirtualClock`]
//!   stepped from a seeded arrival trace, batching decisions — batch
//!   contents and the trigger mix — replay bit-identically with no
//!   wall-clock dependence; the latency *percentiles* are approximate
//!   there (completion times are read while the submitter may still be
//!   advancing the clock), so treat them like any other
//!   measured-duration metric.
//!
//! # Determinism contract
//!
//! For a fixed set of queries, the service's **per-query plans, counters
//! and frontiers are bit-identical to optimizing the same queries one by
//! one through a plain `OptimizerSession`** — independent of batch
//! grouping, shard count, trigger timing and cache evictions. Batching
//! only regroups independent deterministic optimizations; shard spaces
//! are constructed identically; evicted lifts re-lift to bit-identical
//! values (lifts are pure in their shape). Only throughput counters
//! (`lps_solved` snapshots, cache hit/miss/eviction totals) depend on the
//! grouping. The contract extends **under faults**: with a deterministic
//! fault plan (`mpq_catalog::fault::FaultPlan`) poisoning some queries,
//! every *healthy* query's plans/counters/frontiers stay bit-identical
//! to the plain session — quarantine only removes the poison, it never
//! perturbs its batch-mates (the fault hook fires before any optimizer
//! state is touched, and retries of healthy queries are pure replays).
//! Enforced by `tests/service_proptest.rs` (fault-free) and
//! `tests/chaos_proptest.rs` (under seeded fault plans) across random
//! traces × policies × shard counts × cache capacities.
//!
//! # Example
//!
//! ```
//! use mpq_core::prelude::*;
//! use mpq_core::session::SessionConfig;
//! use mpq_catalog::generator::{generate_workload, GeneratorConfig, WorkloadConfig};
//! use mpq_catalog::graph::Topology;
//! use mpq_cloud::model::CloudCostModel;
//! use mpq_service::{serve, BatchPolicy, ServiceConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::time::Duration;
//!
//! let cfg = WorkloadConfig::uniform(GeneratorConfig::paper(3, Topology::Chain, 1), 4, 1.0);
//! let workload = generate_workload(&cfg, &mut StdRng::seed_from_u64(1));
//! let model = CloudCostModel::default();
//! let opt = OptimizerConfig::default_for(1);
//! let sessions = ShardedSession::build(2, &model, &SessionConfig::new(opt.clone()), || {
//!     GridSpace::for_unit_box(1, &opt, 2).unwrap()
//! });
//! let config = ServiceConfig::new(BatchPolicy::new(2, Duration::from_millis(5)));
//! let (solutions, stats) = serve(&sessions, config, |handle| {
//!     let tickets: Vec<_> = workload.queries.iter()
//!         .map(|q| handle.submit(q.clone()))
//!         .collect();
//!     tickets.into_iter().map(|t| t.wait().expect_ok()).collect::<Vec<_>>()
//! });
//! assert_eq!(solutions.len(), 4);
//! assert_eq!(stats.completed, 4);
//! assert!(stats.batches >= 1);
//! ```

// A service front-end must not take the process down on a recoverable
// condition; every panic site has to be deliberate. `assert!`/`panic!`
// for contract violations stay allowed — it is the *implicit* panics
// (`unwrap`/`expect` on queue plumbing) this crate bans.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use mpq_catalog::Query;
use mpq_cloud::model::ParametricCostModel;
use mpq_core::rrpa::MpqSolution;
use mpq_core::session::{OptimizerSession, ShardedSession};
use mpq_core::space::MpqSpace;
use mpq_cost::CacheStats;
use mpq_obs::{Counter, Gauge, Histogram, Obs, ObsConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// When an accumulating batch dispatches to its shard.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests buffered (size trigger).
    pub max_batch: usize,
    /// Dispatch once the oldest buffered request has waited this long
    /// under the service clock (deadline trigger) — the latency bound a
    /// request pays for batching.
    pub max_wait: Duration,
}

impl BatchPolicy {
    /// A policy with the given size and deadline triggers.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize, max_wait: Duration) -> Self {
        assert!(max_batch >= 1, "a batch needs room for at least one query");
        Self {
            max_batch,
            max_wait,
        }
    }
}

/// The service's notion of *now*, in seconds from an arbitrary origin.
/// Monotone non-decreasing by contract. The default is wall-clock
/// ([`ServiceConfig::new`]); tests and trace replays install a
/// [`VirtualClock`] ([`ServiceConfig::with_clock`]) that advances only
/// when told to, making deadline triggers replayable with no wall-clock
/// dependence.
pub type ServiceClock = Arc<dyn Fn() -> f64 + Send + Sync>;

/// A deterministic service clock for tests and trace replays: virtual
/// **microseconds**, advanced explicitly by the driver and read by the
/// service as seconds. Advancing takes a max, so the clock is monotone
/// even if drivers race. One `VirtualClock` pins the unit convention for
/// every replay site (the bench harness, unit tests, proptests).
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    micros: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock to `us` virtual microseconds (no-op if the
    /// clock is already past it).
    pub fn advance_to_micros(&self, us: u64) {
        self.micros.fetch_max(us, Ordering::Relaxed);
    }

    /// Advances the clock to `secs` virtual seconds.
    pub fn advance_to_secs(&self, secs: f64) {
        self.advance_to_micros((secs * 1e6) as u64);
    }

    /// The current virtual time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// The [`ServiceClock`] view of this clock (pass to
    /// [`ServiceConfig::with_clock`]).
    pub fn clock(&self) -> ServiceClock {
        let micros = Arc::clone(&self.micros);
        Arc::new(move || micros.load(Ordering::Relaxed) as f64 * 1e-6)
    }
}

/// When a deadline-triggered batch downgrades to the ε-approximate
/// optimizer (see [`ApproxPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxTrigger {
    /// Every deadline-triggered batch runs at ε: the batch already paid
    /// its full latency budget, so it trades precision for speed
    /// unconditionally.
    DeadlineOnly,
    /// A deadline-triggered batch runs at ε only when at least this many
    /// requests were buffered across all shards at flush time — genuine
    /// queue pressure, not just a slow trickle.
    QueueDepth(usize),
}

/// The service's precision/latency dial: when a batch dispatches because
/// its **deadline** expired (the batch already waited `max_wait`), the
/// shard worker may run it through the ε-approximate optimizer
/// ([`mpq_core::session::OptimizerSession::optimize_batch_at`]) instead
/// of the exact one — serving a provable `(1+ε)`-cover of each exact
/// frontier now rather than the exact frontier later. Size- and
/// drain-triggered batches always run exact.
///
/// The ε decision is made by the batcher at flush time from the trigger
/// and the buffered request count — both pure functions of the submission
/// sequence under a [`VirtualClock`] — so trace replays reproduce the
/// same ε choices bit for bit (the same bar as the trigger mix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxPolicy {
    /// The approximation factor deadline-pressured batches run at
    /// (must be finite and positive; `ε = 0` would be the exact path).
    pub epsilon: f64,
    /// Which deadline-triggered batches downgrade.
    pub trigger: ApproxTrigger,
}

impl ApproxPolicy {
    /// Downgrade every deadline-triggered batch to ε.
    pub fn deadline_only(epsilon: f64) -> Self {
        Self {
            epsilon,
            trigger: ApproxTrigger::DeadlineOnly,
        }
    }

    /// Downgrade deadline-triggered batches to ε only under queue
    /// pressure (≥ `depth` buffered requests at flush time).
    pub fn queue_depth(epsilon: f64, depth: usize) -> Self {
        Self {
            epsilon,
            trigger: ApproxTrigger::QueueDepth(depth),
        }
    }
}

/// Service configuration: the batch policy, the clock, the admission
/// bound, and the approximate-serving policy.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Batch dispatch triggers.
    pub policy: BatchPolicy,
    /// The service clock (`None` = wall clock anchored at service start).
    pub clock: Option<ServiceClock>,
    /// Admission bound: the maximum number of requests submitted but not
    /// yet dispatched to a shard worker (accumulating buffers plus the
    /// submit channel). `None` = unbounded. At the bound, [`submit`]
    /// answers the ticket immediately with [`QueryOutcome::Rejected`] —
    /// visible backpressure instead of unbounded queueing.
    ///
    /// [`submit`]: ServiceHandle::submit
    pub max_queue: Option<usize>,
    /// ε-approximate serving policy for deadline-pressured batches
    /// (`None` = always exact; see [`ApproxPolicy`]).
    pub approx: Option<ApproxPolicy>,
    /// Observability: [`ObsConfig::Off`] (the default) keeps serving on
    /// the unobserved hot path; [`ObsConfig::On`] mirrors every
    /// lifecycle counter into the handle's registry and emits
    /// submit/dispatch/batch spans. Never changes results — see the
    /// obs-identity tests.
    pub obs: ObsConfig,
}

impl ServiceConfig {
    /// Wall-clock service over the given policy, unbounded admission,
    /// always-exact serving.
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            policy,
            clock: None,
            max_queue: None,
            approx: None,
            obs: ObsConfig::Off,
        }
    }

    /// Installs a caller-supplied clock (see [`ServiceClock`]).
    pub fn with_clock(mut self, clock: ServiceClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Bounds the submit queue (see [`ServiceConfig::max_queue`]).
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = Some(max_queue);
        self
    }

    /// Installs an ε-approximate serving policy (see [`ApproxPolicy`]).
    ///
    /// # Panics
    /// Panics if the policy's ε is not finite and positive.
    pub fn with_approx(mut self, approx: ApproxPolicy) -> Self {
        assert!(
            approx.epsilon.is_finite() && approx.epsilon > 0.0,
            "an approximate-serving policy needs a finite positive epsilon"
        );
        self.approx = Some(approx);
        self
    }

    /// Attaches an observability handle (see [`ServiceConfig::obs`]).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = ObsConfig::On(obs);
        self
    }
}

/// A query submitted to the service. (A struct, not a bare `Query`, so
/// per-request options — priorities, deadlines — can grow without
/// breaking the submit API.)
#[derive(Debug, Clone, PartialEq)]
pub struct SubmittedQuery {
    /// The query to optimize.
    pub query: Query,
    /// Optional absolute deadline in service-clock seconds. Checked when
    /// the query's batch dispatches: if `now > deadline` at that point,
    /// the query is answered [`QueryOutcome::TimedOut`] without running
    /// the optimizer. `None` = no budget. (The check is at *dispatch*,
    /// not mid-optimization: a query that starts optimizing before its
    /// deadline completes normally.)
    pub deadline: Option<f64>,
}

impl SubmittedQuery {
    /// A submission with no deadline.
    pub fn new(query: Query) -> Self {
        Self {
            query,
            deadline: None,
        }
    }

    /// Sets the absolute service-clock deadline in seconds.
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl From<Query> for SubmittedQuery {
    fn from(query: Query) -> Self {
        Self::new(query)
    }
}

/// Why a batch dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchTrigger {
    /// The buffer reached `max_batch`.
    Size,
    /// The oldest buffered request waited `max_wait`.
    Deadline,
    /// Service shutdown flushed the remainder.
    Drain,
}

/// How a request travelled through the service: set on outcomes that
/// reached a shard worker ([`QueryOutcome::Ok`] / [`Panicked`]), absent
/// on requests turned away earlier (`TimedOut`, `Rejected`, `Shutdown`).
///
/// [`Panicked`]: QueryOutcome::Panicked
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRoute {
    /// The shard that ran the request's batch.
    pub shard: usize,
    /// Sequence number of the batch it rode in.
    pub batch_seq: u64,
    /// Number of requests in that batch.
    pub batch_size: usize,
    /// Why the batch dispatched.
    pub trigger: BatchTrigger,
}

/// What became of one submitted query. Every ticket resolves to exactly
/// one outcome — the service never answers a ticket twice and never
/// leaves one unanswered (shutdown drains every buffer).
pub enum QueryOutcome<S: MpqSpace> {
    /// The optimization result — bit-identical to a plain
    /// `OptimizerSession` run of the same query (the determinism
    /// contract; see the crate docs).
    Ok(MpqSolution<S>),
    /// The query panicked inside the optimizer. The batch bisection
    /// attributed the panic to *this* query; its batch-mates were re-run
    /// and answered normally. `message` is the panic payload (or a
    /// placeholder for non-string payloads).
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The query's [`SubmittedQuery::deadline`] had already passed when
    /// its batch dispatched; the optimizer never ran it.
    TimedOut,
    /// Admission control turned the query away: the submit queue was at
    /// [`ServiceConfig::max_queue`].
    Rejected,
    /// The service shut down before answering (or had already shut down
    /// at submit time).
    Shutdown,
}

/// The discriminant of a [`QueryOutcome`], for matching and counting
/// without touching the solution payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeKind {
    /// Optimized successfully.
    Ok,
    /// Quarantined after panicking.
    Panicked,
    /// Deadline expired before dispatch.
    TimedOut,
    /// Turned away by admission control.
    Rejected,
    /// Service terminated without an answer.
    Shutdown,
}

impl<S: MpqSpace> QueryOutcome<S> {
    /// The outcome's discriminant.
    pub fn kind(&self) -> OutcomeKind {
        match self {
            QueryOutcome::Ok(_) => OutcomeKind::Ok,
            QueryOutcome::Panicked { .. } => OutcomeKind::Panicked,
            QueryOutcome::TimedOut => OutcomeKind::TimedOut,
            QueryOutcome::Rejected => OutcomeKind::Rejected,
            QueryOutcome::Shutdown => OutcomeKind::Shutdown,
        }
    }

    /// The solution, if the query completed.
    pub fn ok(self) -> Option<MpqSolution<S>> {
        match self {
            QueryOutcome::Ok(solution) => Some(solution),
            _ => None,
        }
    }

    /// A reference to the solution, if the query completed.
    pub fn as_ok(&self) -> Option<&MpqSolution<S>> {
        match self {
            QueryOutcome::Ok(solution) => Some(solution),
            _ => None,
        }
    }
}

impl<S: MpqSpace> std::fmt::Debug for QueryOutcome<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryOutcome::Ok(_) => f.write_str("Ok(..)"),
            QueryOutcome::Panicked { message } => f
                .debug_struct("Panicked")
                .field("message", message)
                .finish(),
            QueryOutcome::TimedOut => f.write_str("TimedOut"),
            QueryOutcome::Rejected => f.write_str("Rejected"),
            QueryOutcome::Shutdown => f.write_str("Shutdown"),
        }
    }
}

/// One resolved request: the outcome plus how it travelled through the
/// service.
pub struct QueryResponse<S: MpqSpace> {
    /// What became of the query.
    pub outcome: QueryOutcome<S>,
    /// The batch the query rode in — `Some` only for outcomes that
    /// reached a shard worker (`Ok` / `Panicked`).
    pub route: Option<BatchRoute>,
    /// Submit-to-resolution latency in service-clock seconds.
    /// Meaningful for `Ok`, `Panicked` and `TimedOut`; `0.0` for
    /// requests turned away at submit time (`Rejected`, `Shutdown`).
    pub latency: f64,
    /// The ε-approximation factor the request's batch ran at: `Some(ε)`
    /// when an [`ApproxPolicy`] downgraded the (deadline-pressured)
    /// batch, `None` for exact serving or outcomes that never reached a
    /// worker. An `Ok` answer with `Some(ε)` is a `(1+ε)`-cover of the
    /// exact frontier (every exact-frontier plan is ε-dominated by some
    /// served plan), not necessarily the exact frontier itself.
    pub served_epsilon: Option<f64>,
}

impl<S: MpqSpace> std::fmt::Debug for QueryResponse<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryResponse")
            .field("outcome", &self.outcome)
            .field("route", &self.route)
            .field("latency", &self.latency)
            .field("served_epsilon", &self.served_epsilon)
            .finish()
    }
}

impl<S: MpqSpace> QueryResponse<S> {
    /// The outcome's discriminant.
    pub fn kind(&self) -> OutcomeKind {
        self.outcome.kind()
    }

    /// The solution of an `Ok` outcome.
    ///
    /// # Panics
    /// Panics if the outcome is anything but `Ok` — the convenience for
    /// fault-free callers (benches, examples) that treat any other
    /// outcome as a bug.
    pub fn expect_ok(self) -> MpqSolution<S> {
        match self.outcome {
            QueryOutcome::Ok(solution) => solution,
            other => panic!("query did not complete: outcome {:?}", other.kind()),
        }
    }
}

/// Completion handle of one submission: a per-request channel the
/// service answers exactly once.
pub struct ServiceTicket<S: MpqSpace> {
    rx: mpsc::Receiver<QueryResponse<S>>,
}

impl<S: MpqSpace> ServiceTicket<S> {
    /// Blocks until the request resolves. Never panics: if the service
    /// terminated without answering (it was killed, or the ticket's
    /// response was lost to a send race at teardown), the outcome is
    /// [`QueryOutcome::Shutdown`].
    ///
    /// A ticket outlives the service: responses buffer in the ticket's
    /// channel, so tickets can be waited **after** [`serve`] returns —
    /// shutdown drains every buffer first. That is also the safe pattern
    /// under a [`VirtualClock`] (or any non-advancing clock): waiting
    /// *inside* the `serve` body for a request whose batch has neither
    /// size-triggered nor passed its (frozen-clock) deadline blocks
    /// forever, because the drain flush only runs once the body returns.
    pub fn wait(self) -> QueryResponse<S> {
        self.rx.recv().unwrap_or_else(|_| QueryResponse {
            outcome: QueryOutcome::Shutdown,
            route: None,
            latency: 0.0,
            served_epsilon: None,
        })
    }

    /// [`Self::wait`] with a **real-time** budget, so a caller can never
    /// deadlock on a frozen clock: `budget` is wall time (not
    /// service-clock time — a stalled [`VirtualClock`] would make a
    /// virtual budget unreachable, reintroducing the exact hang this
    /// method exists to rule out, the documented `wait()`-inside-body
    /// hang of [`Self::wait`]). On expiry the caller gets
    /// [`QueryOutcome::TimedOut`] with `latency` measured on `clock`
    /// (the service-clock time spent waiting, `0.0` under a frozen
    /// virtual clock). The ticket is consumed; a response the service
    /// produces later is dropped with the channel — the request itself
    /// still runs to completion inside the service and is counted there.
    pub fn wait_timeout(self, clock: &ServiceClock, budget: Duration) -> QueryResponse<S> {
        let waited_from = clock();
        match self.rx.recv_timeout(budget) {
            Ok(response) => response,
            Err(mpsc::RecvTimeoutError::Disconnected) => QueryResponse {
                outcome: QueryOutcome::Shutdown,
                route: None,
                latency: 0.0,
                served_epsilon: None,
            },
            Err(mpsc::RecvTimeoutError::Timeout) => QueryResponse {
                outcome: QueryOutcome::TimedOut,
                route: None,
                latency: clock() - waited_from,
                served_epsilon: None,
            },
        }
    }

    /// Non-blocking poll: `Some` once the response is ready.
    pub fn try_wait(&self) -> Option<QueryResponse<S>> {
        self.rx.try_recv().ok()
    }
}

/// Per-shard service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Requests dispatched to this shard (including quarantined ones).
    pub queries: u64,
    /// Batches dispatched to this shard.
    pub batches: u64,
    /// Panics this shard's worker caught and recovered from (each
    /// bisection attempt that panicked counts one — a single poison
    /// query in a batch of n costs up to ⌈log₂ n⌉ + 1 restarts).
    pub restarts: u64,
    /// The shard session's cost-lifting cache counters
    /// (hit/miss/evictions).
    pub cache: CacheStats,
    /// The shard session's shared-subplan cache counters (all-zero when
    /// subtree caching is disabled in the session config).
    pub subtree: CacheStats,
}

/// Snapshot of the service counters (see [`ServiceHandle::stats`] /
/// [`serve`]'s return value).
///
/// Conservation: every submission resolves exactly once, so after
/// shutdown `submitted ==
/// completed + rejected + timed_out + quarantined + unavailable`
/// (mid-run, the difference is the in-flight count) —
/// [`Self::conserves`] checks exactly this. ε-served answers are
/// ordinary completions — `approx_served ≤ completed` refines the mix,
/// it never adds a resolution class — and the wire counters (`retries`,
/// `reconnects`, `dropped`) describe *transport effort*, not
/// resolutions, so they sit outside the identity. In-process serving
/// ([`serve`]) has no wire: its snapshots report all four wire counters
/// as zero, and a network front (`mpq-net`) reports through the same
/// snapshot type with them live.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests submitted (including ones later rejected).
    pub submitted: u64,
    /// Requests answered with a solution ([`QueryOutcome::Ok`]).
    pub completed: u64,
    /// Of `completed`, the answers served ε-approximately (their batch
    /// was downgraded by the [`ApproxPolicy`]; the response carries
    /// `served_epsilon: Some(ε)`).
    pub approx_served: u64,
    /// Batches the [`ApproxPolicy`] downgraded to ε.
    pub approx_batches: u64,
    /// Requests turned away by admission control
    /// ([`QueryOutcome::Rejected`]).
    pub rejected: u64,
    /// Requests whose deadline expired before dispatch
    /// ([`QueryOutcome::TimedOut`]).
    pub timed_out: u64,
    /// Requests quarantined after panicking
    /// ([`QueryOutcome::Panicked`]).
    pub quarantined: u64,
    /// Requests resolved as degraded by a network front: the shard was
    /// unreachable (or answered `Shutdown`) after every retry. Always
    /// `0` for in-process serving — there is no wire to lose.
    pub unavailable: u64,
    /// Request attempts beyond the first, across all requests (a network
    /// front's retry loop; `0` in-process and on a fault-free wire).
    pub retries: u64,
    /// Connection re-establishments after a transport error (`0`
    /// in-process and on a fault-free wire).
    pub reconnects: u64,
    /// Frames destroyed in flight, as observed by a deterministic fault
    /// injector (`0` in-process; real networks drop silently, so this
    /// counter is only exact under injection).
    pub dropped: u64,
    /// Requests currently buffered (accumulating, not yet dispatched).
    pub queue_depth: u64,
    /// Largest buffered count observed.
    pub queue_depth_peak: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches dispatched by the size trigger.
    pub size_triggered: u64,
    /// Batches dispatched by the deadline trigger.
    pub deadline_triggered: u64,
    /// Batches flushed at shutdown.
    pub drain_triggered: u64,
    /// LPs solved across all dispatched batches (summed per-batch deltas
    /// — exact: shards run one batch at a time; includes work burned by
    /// panicked bisection attempts).
    pub lps_solved: u64,
    /// Per-shard counters, indexed by shard.
    pub per_shard: Vec<ShardStats>,
    /// Median submit-to-completion latency in service-clock seconds over
    /// all **successful** completions, read from a log-bucketed
    /// [`mpq_obs::Histogram`]: the reported value is a bucket
    /// representative (≤ 12.5 % relative error), NaN before the first
    /// completion. Quarantined/timed-out/rejected requests are excluded,
    /// so the percentiles describe healthy-query latency even under
    /// faults; and because bucket counts are order-independent, the
    /// percentiles are deterministic under a virtual clock even when
    /// completion stamps race the clock's driver.
    pub latency_p50: f64,
    /// 95th-percentile latency in service-clock seconds from the same
    /// histogram (NaN before the first completion).
    pub latency_p95: f64,
}

impl ServiceStats {
    /// The conservation identity: after shutdown (or any quiescent
    /// point), every submission has resolved to exactly one of the five
    /// resolution classes. Both the in-process chaos suite and the
    /// network chaos suite assert this on every run — it is the single
    /// accounting invariant shared by all serving fronts.
    pub fn conserves(&self) -> bool {
        self.completed + self.rejected + self.timed_out + self.quarantined + self.unavailable
            == self.submitted
    }
}

/// Registry mirrors of the lifecycle counters, resolved once at service
/// start (present only with [`ObsConfig::On`] — the `None` arm keeps
/// obs-off serving free of any registry traffic). Each cell is bumped at
/// the same site as its [`StatsShared`] atomic, so the registry satisfies
/// the same conservation identity as [`ServiceStats`] at any quiescent
/// point — pinned by the obs tests.
struct ObsMirror {
    submitted: Counter,
    completed: Counter,
    approx_served: Counter,
    approx_batches: Counter,
    rejected: Counter,
    timed_out: Counter,
    quarantined: Counter,
    batches: Counter,
    size_triggered: Counter,
    deadline_triggered: Counter,
    drain_triggered: Counter,
    lps_solved: Counter,
    queue_depth: Gauge,
    queue_depth_peak: Gauge,
}

impl ObsMirror {
    fn resolve(registry: &mpq_obs::Registry) -> Self {
        Self {
            submitted: registry.counter("service_submitted"),
            completed: registry.counter("service_completed"),
            approx_served: registry.counter("service_approx_served"),
            approx_batches: registry.counter("service_approx_batches"),
            rejected: registry.counter("service_rejected"),
            timed_out: registry.counter("service_timed_out"),
            quarantined: registry.counter("service_quarantined"),
            batches: registry.counter("service_batches"),
            size_triggered: registry.counter("service_size_triggered"),
            deadline_triggered: registry.counter("service_deadline_triggered"),
            drain_triggered: registry.counter("service_drain_triggered"),
            lps_solved: registry.counter("service_lps_solved"),
            queue_depth: registry.gauge("service_queue_depth"),
            queue_depth_peak: registry.gauge("service_queue_depth_peak"),
        }
    }
}

/// The lock/atomic-backed live counters behind [`ServiceStats`].
struct StatsShared {
    submitted: AtomicU64,
    completed: AtomicU64,
    approx_served: AtomicU64,
    approx_batches: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    quarantined: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    /// Admission-control occupancy: requests submitted but not yet
    /// dispatched to a shard (submit channel + accumulating buffers).
    /// Kept separate from `queue_depth`, which deliberately counts only
    /// *buffered* requests so its peak stays a deterministic function of
    /// the submission sequence under a virtual clock.
    queued: AtomicU64,
    batches: AtomicU64,
    size_triggered: AtomicU64,
    deadline_triggered: AtomicU64,
    drain_triggered: AtomicU64,
    lps_solved: AtomicU64,
    shard_queries: Vec<AtomicU64>,
    shard_batches: Vec<AtomicU64>,
    shard_restarts: Vec<AtomicU64>,
    /// Submit-to-completion latencies of successful completions, as a
    /// lock-free log-bucketed histogram: bounded memory at any request
    /// volume, mergeable across processes, and percentiles that are a
    /// pure function of the *set* of samples (no ring-overwrite order
    /// dependence). With observability on this is the registry's
    /// `service_latency_seconds` histogram, so exposition and
    /// [`ServiceStats`] read the same cells.
    latencies: Arc<Histogram>,
    mirror: Option<ObsMirror>,
}

impl StatsShared {
    fn new(shards: usize, obs: &Obs) -> Self {
        let (latencies, mirror) = match obs.registry() {
            Some(registry) => (
                registry.histogram("service_latency_seconds"),
                Some(ObsMirror::resolve(registry)),
            ),
            None => (Arc::new(Histogram::new()), None),
        };
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            approx_served: AtomicU64::new(0),
            approx_batches: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            size_triggered: AtomicU64::new(0),
            deadline_triggered: AtomicU64::new(0),
            drain_triggered: AtomicU64::new(0),
            lps_solved: AtomicU64::new(0),
            shard_queries: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_batches: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_restarts: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            latencies,
            mirror,
        }
    }

    fn push_latency(&self, v: f64) {
        self.latencies.record_secs(v);
    }

    /// Bumps `field` and its registry mirror (selected by `pick` so the
    /// obs-off path never touches the registry) — the single idiom
    /// keeping the atomic and the mirror in lock-step at every site.
    fn bump(&self, field: &AtomicU64, pick: impl FnOnce(&ObsMirror) -> &Counter) {
        field.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.mirror {
            pick(m).inc();
        }
    }

    fn snapshot(&self, caches: Vec<CacheStats>, subtrees: Vec<CacheStats>) -> ServiceStats {
        let quantile = |q: f64| -> f64 {
            if self.latencies.count() == 0 {
                return f64::NAN;
            }
            self.latencies.quantile_secs(q)
        };
        if let Some(m) = &self.mirror {
            m.queue_depth.set(self.queue_depth.load(Ordering::Relaxed));
            m.queue_depth_peak
                .set(self.queue_depth_peak.load(Ordering::Relaxed));
        }
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            approx_served: self.approx_served.load(Ordering::Relaxed),
            approx_batches: self.approx_batches.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            // In-process serving has no wire: the four transport
            // counters exist so a network front can report through the
            // same snapshot type (see the `ServiceStats` docs).
            unavailable: 0,
            retries: 0,
            reconnects: 0,
            dropped: 0,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            size_triggered: self.size_triggered.load(Ordering::Relaxed),
            deadline_triggered: self.deadline_triggered.load(Ordering::Relaxed),
            drain_triggered: self.drain_triggered.load(Ordering::Relaxed),
            lps_solved: self.lps_solved.load(Ordering::Relaxed),
            per_shard: caches
                .into_iter()
                .zip(subtrees)
                .enumerate()
                .map(|(i, (cache, subtree))| ShardStats {
                    queries: self.shard_queries[i].load(Ordering::Relaxed),
                    batches: self.shard_batches[i].load(Ordering::Relaxed),
                    restarts: self.shard_restarts[i].load(Ordering::Relaxed),
                    cache,
                    subtree,
                })
                .collect(),
            latency_p50: quantile(0.50),
            latency_p95: quantile(0.95),
        }
    }
}

/// One buffered request travelling batcher → shard worker.
struct Pending<S: MpqSpace> {
    query: Query,
    /// Absolute service-clock deadline (see [`SubmittedQuery::deadline`]).
    deadline: Option<f64>,
    submitted_at: f64,
    reply: mpsc::Sender<QueryResponse<S>>,
}

/// Stable numeric code for a trigger in span fields (spans carry u64s).
fn trigger_code(t: BatchTrigger) -> u64 {
    match t {
        BatchTrigger::Size => 0,
        BatchTrigger::Deadline => 1,
        BatchTrigger::Drain => 2,
    }
}

/// One dispatched batch.
struct ShardBatch<S: MpqSpace> {
    seq: u64,
    trigger: BatchTrigger,
    /// `Some(ε)` when the [`ApproxPolicy`] downgraded this
    /// (deadline-pressured) batch — decided by the batcher at flush
    /// time, so the shard worker and every bisection replay run at the
    /// same ε.
    epsilon: Option<f64>,
    requests: Vec<Pending<S>>,
}

/// Stringifies a caught panic payload (panics carry `&str` or `String`
/// payloads unless raised via `panic_any`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Per-query result of one batch after panic isolation.
type BatchItem<S> = Result<MpqSolution<S>, String>;

/// Optimizes `queries[i]` for every `i` in `idx`, isolating panics by
/// halving bisection: attempt the whole index range as one batch; on a
/// caught panic, split it and recurse (depth ≤ ⌈log₂ n⌉ — each level
/// halves the range). A range of one that still panics is the poison —
/// it is quarantined as `Err(message)`. Healthy queries re-run on the
/// retry are pure replays (sessions are stateless per query up to
/// caches, and cached lifts are pure in their shape), so their results
/// stay bit-identical however often the bisection re-attempts them.
/// Every caught panic bumps `restarts`.
///
/// `AssertUnwindSafe` is justified by the session's design: the fault
/// hook fires *before* any optimizer state is touched, so an injected
/// panic cannot poison session internals; a genuine mid-optimize panic
/// may poison a session-internal lock, in which case the retry's panic
/// is caught again here and the affected queries are quarantined rather
/// than taking the process down.
fn isolate_into<S, M>(
    session: &OptimizerSession<'_, S, M>,
    queries: &[Query],
    idx: &[usize],
    out: &mut [Option<BatchItem<S>>],
    restarts: &AtomicU64,
    epsilon: Option<f64>,
) where
    S: MpqSpace + Sync,
    S::Cost: Send + Sync,
    S::Region: Send + Sync,
    M: ParametricCostModel + ?Sized,
{
    if idx.is_empty() {
        return;
    }
    let part: Vec<Query> = idx.iter().map(|&i| queries[i].clone()).collect();
    // Bisection retries preserve the batch's ε: a quarantine replay of
    // an approximate batch re-runs the healthy queries at the same ε, so
    // their answers stay bit-identical to the first (panicked) attempt.
    match catch_unwind(AssertUnwindSafe(|| match epsilon {
        Some(e) => session.optimize_batch_at(&part, e),
        None => session.optimize_batch(&part),
    })) {
        Ok(solutions) => {
            for (&i, solution) in idx.iter().zip(solutions) {
                out[i] = Some(Ok(solution));
            }
        }
        Err(payload) => {
            restarts.fetch_add(1, Ordering::Relaxed);
            if idx.len() == 1 {
                out[idx[0]] = Some(Err(panic_message(payload)));
            } else {
                let mid = idx.len() / 2;
                isolate_into(session, queries, &idx[..mid], out, restarts, epsilon);
                isolate_into(session, queries, &idx[mid..], out, restarts, epsilon);
            }
        }
    }
}

/// The submit-side handle passed to [`serve`]'s body closure.
pub struct ServiceHandle<'a, S: MpqSpace, M: ParametricCostModel + ?Sized> {
    // `mpsc::Sender` is `Send` but not `Sync`; the mutex makes the handle
    // shareable across client threads (submission rate is far below the
    // lock's throughput).
    tx: Mutex<mpsc::Sender<Pending<S>>>,
    clock: ServiceClock,
    max_queue: Option<usize>,
    stats: Arc<StatsShared>,
    obs: Obs,
    sessions: &'a ShardedSession<'a, S, M>,
}

impl<S, M> ServiceHandle<'_, S, M>
where
    S: MpqSpace + Sync,
    S::Cost: Send + Sync,
    S::Region: Send + Sync,
    M: ParametricCostModel + ?Sized,
{
    /// Submits a query; returns the completion ticket. Accepts anything
    /// convertible into a [`SubmittedQuery`] (a bare `Query` works; use
    /// [`SubmittedQuery::with_deadline`] for a latency budget).
    ///
    /// Never panics and never blocks on a full service: if admission
    /// control is at its bound the ticket resolves immediately to
    /// [`QueryOutcome::Rejected`]; if the service has already shut down
    /// it resolves to [`QueryOutcome::Shutdown`].
    pub fn submit(&self, query: impl Into<SubmittedQuery>) -> ServiceTicket<S> {
        let submitted = query.into();
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut span = self.obs.span("submit");
        self.stats.bump(&self.stats.submitted, |m| &m.submitted);
        // Admission control: reserve a queue slot or reject. The
        // reservation is released when the request leaves the buffers
        // (dispatch, expiry, or shutdown drain).
        let admitted = match self.max_queue {
            Some(max) => self
                .stats
                .queued
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |q| {
                    (q < max as u64).then_some(q + 1)
                })
                .is_ok(),
            None => {
                self.stats.queued.fetch_add(1, Ordering::Relaxed);
                true
            }
        };
        if !admitted {
            span.record("rejected", 1);
            self.stats.bump(&self.stats.rejected, |m| &m.rejected);
            let _ = reply_tx.send(QueryResponse {
                outcome: QueryOutcome::Rejected,
                route: None,
                latency: 0.0,
                served_epsilon: None,
            });
            return ServiceTicket { rx: reply_rx };
        }
        let pending = Pending {
            query: submitted.query,
            deadline: submitted.deadline,
            submitted_at: (self.clock)(),
            reply: reply_tx,
        };
        // A poisoned submit lock only means another client thread
        // panicked *while holding it*; the sender inside is still valid.
        let sender = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(mpsc::SendError(pending)) = sender.send(pending) {
            // The batcher is gone — the service is shutting down (or was
            // killed). Answer the ticket instead of panicking the client.
            self.stats.queued.fetch_sub(1, Ordering::Relaxed);
            let _ = pending.reply.send(QueryResponse {
                outcome: QueryOutcome::Shutdown,
                route: None,
                latency: 0.0,
                served_epsilon: None,
            });
        }
        ServiceTicket { rx: reply_rx }
    }

    /// A live snapshot of the service counters (queue depth, batches,
    /// trigger mix, rejection/quarantine counts, per-shard cache
    /// hit/miss and restarts, latency percentiles).
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot(
            self.sessions.cache_stats_per_shard(),
            self.sessions.subtree_stats_per_shard(),
        )
    }

    /// The service clock (useful for clients that want to timestamp their
    /// own records consistently — e.g. to compute absolute deadlines).
    pub fn now(&self) -> f64 {
        (self.clock)()
    }
}

/// One shard's accumulating buffer.
struct ShardBuffer<S: MpqSpace> {
    requests: Vec<Pending<S>>,
    /// Service-clock *batching* deadline of the oldest buffered request
    /// (`submitted_at + max_wait`); meaningless while empty. (Distinct
    /// from the per-query [`SubmittedQuery::deadline`] budget.)
    deadline: f64,
}

/// Runs the service for the duration of `body`: spawns the batcher and
/// one worker per shard of `sessions` (scoped threads — the sessions and
/// their model are borrowed, not `'static`), hands `body` the submit
/// handle, and on return drains the buffers, joins every thread and
/// returns `body`'s result together with the final [`ServiceStats`].
///
/// Fault tolerance: a panicking query is quarantined by batch bisection
/// and answered [`QueryOutcome::Panicked`]; its batch-mates are re-run
/// and answered normally; the shard worker survives. `serve` itself
/// only propagates a panic raised by `body` or by the service plumbing
/// — never one raised inside a query's optimization.
///
/// Batching, sharding and eviction never change per-query results — see
/// the crate-level determinism contract.
pub fn serve<S, M, R>(
    sessions: &ShardedSession<'_, S, M>,
    config: ServiceConfig,
    body: impl FnOnce(&ServiceHandle<'_, S, M>) -> R,
) -> (R, ServiceStats)
where
    S: MpqSpace + Sync,
    S::Cost: Send + Sync,
    S::Region: Send + Sync,
    M: ParametricCostModel + ?Sized,
{
    let shards = sessions.num_shards();
    let policy = config.policy;
    let approx = config.approx;
    assert!(policy.max_batch >= 1, "max_batch must be at least 1");
    let clock: ServiceClock = config.clock.unwrap_or_else(|| {
        let start = Instant::now();
        Arc::new(move || start.elapsed().as_secs_f64())
    });
    let obs = config.obs.obs();
    let stats = Arc::new(StatsShared::new(shards, &obs));

    let out = std::thread::scope(|scope| {
        let (sub_tx, sub_rx) = mpsc::channel::<Pending<S>>();
        let mut batch_txs = Vec::with_capacity(shards);
        // Shard workers: one thread per shard, each draining its own
        // batch channel through its own session. One batch at a time per
        // shard keeps the per-batch LP delta exact.
        for shard in 0..shards {
            let (batch_tx, batch_rx) = mpsc::channel::<ShardBatch<S>>();
            batch_txs.push(batch_tx);
            let stats = Arc::clone(&stats);
            let clock = Arc::clone(&clock);
            let obs = obs.clone();
            let session = sessions.shard(shard);
            scope.spawn(move || {
                for batch in batch_rx {
                    let batch_size = batch.requests.len();
                    let mut span = obs.span("shard_batch");
                    span.record("shard", shard as u64);
                    span.record("batch_seq", batch.seq);
                    span.record("batch_size", batch_size as u64);
                    span.record("trigger", trigger_code(batch.trigger));
                    if batch.epsilon.is_some() {
                        span.record("approx", 1);
                    }
                    stats.shard_batches[shard].fetch_add(1, Ordering::Relaxed);
                    stats.shard_queries[shard].fetch_add(batch_size as u64, Ordering::Relaxed);
                    let queries: Vec<Query> =
                        batch.requests.iter().map(|p| p.query.clone()).collect();
                    // LP delta measured around the whole isolation, so
                    // work burned by panicked attempts is counted too.
                    let lps_before = session.lps_solved();
                    let restarts_before = stats.shard_restarts[shard].load(Ordering::Relaxed);
                    let idx: Vec<usize> = (0..batch_size).collect();
                    let mut results: Vec<Option<BatchItem<S>>> =
                        (0..batch_size).map(|_| None).collect();
                    isolate_into(
                        session,
                        &queries,
                        &idx,
                        &mut results,
                        &stats.shard_restarts[shard],
                        batch.epsilon,
                    );
                    let lps_delta = session.lps_solved() - lps_before;
                    span.record("lps_delta", lps_delta);
                    span.record(
                        "restarts_delta",
                        stats.shard_restarts[shard].load(Ordering::Relaxed) - restarts_before,
                    );
                    stats.lps_solved.fetch_add(lps_delta, Ordering::Relaxed);
                    if let Some(m) = &stats.mirror {
                        m.lps_solved.add(lps_delta);
                    }
                    let now = clock();
                    let route = BatchRoute {
                        shard,
                        batch_seq: batch.seq,
                        batch_size,
                        trigger: batch.trigger,
                    };
                    for (pending, result) in batch.requests.into_iter().zip(results) {
                        let latency = now - pending.submitted_at;
                        let outcome = match result {
                            Some(Ok(solution)) => {
                                stats.push_latency(latency);
                                stats.bump(&stats.completed, |m| &m.completed);
                                if batch.epsilon.is_some() {
                                    stats.bump(&stats.approx_served, |m| &m.approx_served);
                                }
                                QueryOutcome::Ok(solution)
                            }
                            Some(Err(message)) => {
                                stats.bump(&stats.quarantined, |m| &m.quarantined);
                                QueryOutcome::Panicked { message }
                            }
                            // Unreachable: `isolate_into` fills every
                            // index it is given. Kept as a typed answer
                            // so a logic bug degrades one query, not the
                            // process.
                            None => {
                                stats.bump(&stats.quarantined, |m| &m.quarantined);
                                QueryOutcome::Panicked {
                                    message: "batch isolation missed the query".to_string(),
                                }
                            }
                        };
                        // A dropped ticket is fine — the client walked
                        // away from the response.
                        let _ = pending.reply.send(QueryResponse {
                            outcome,
                            route: Some(route),
                            latency,
                            served_epsilon: batch.epsilon,
                        });
                    }
                }
            });
        }

        // The batcher: accumulates per-shard buffers and dispatches on
        // size, deadline, or drain.
        {
            let stats = Arc::clone(&stats);
            let clock = Arc::clone(&clock);
            let obs = obs.clone();
            scope.spawn(move || {
                let max_wait_secs = policy.max_wait.as_secs_f64();
                let mut buffers: Vec<ShardBuffer<S>> = (0..shards)
                    .map(|_| ShardBuffer {
                        requests: Vec::new(),
                        deadline: 0.0,
                    })
                    .collect();
                let mut seq = 0u64;
                let mut flush =
                    |buffers: &mut Vec<ShardBuffer<S>>, shard: usize, trigger: BatchTrigger| {
                        // ε decision, *before* the take so the buffered
                        // depth includes this shard's requests. Both
                        // inputs — the trigger and the total buffered
                        // count — are pure functions of the submission
                        // sequence under a virtual clock, so replays
                        // reproduce the ε choice exactly.
                        let epsilon = approx.and_then(|a| {
                            if trigger != BatchTrigger::Deadline {
                                return None;
                            }
                            let buffered: usize = buffers.iter().map(|b| b.requests.len()).sum();
                            match a.trigger {
                                ApproxTrigger::DeadlineOnly => Some(a.epsilon),
                                ApproxTrigger::QueueDepth(depth) => {
                                    (buffered >= depth).then_some(a.epsilon)
                                }
                            }
                        });
                        let requests = std::mem::take(&mut buffers[shard].requests);
                        if requests.is_empty() {
                            return;
                        }
                        let mut span = obs.span("batch_flush");
                        span.record("shard", shard as u64);
                        span.record("trigger", trigger_code(trigger));
                        let n = requests.len() as u64;
                        stats.queue_depth.fetch_sub(n, Ordering::Relaxed);
                        stats.queued.fetch_sub(n, Ordering::Relaxed);
                        // Per-query deadline budget, checked at dispatch:
                        // requests already expired are answered TimedOut
                        // without burning optimizer time; the batch forms
                        // from the rest.
                        let now = clock();
                        let (live, expired): (Vec<_>, Vec<_>) = requests
                            .into_iter()
                            .partition(|p| p.deadline.is_none_or(|d| now <= d));
                        span.record("expired", expired.len() as u64);
                        span.record("dispatched", live.len() as u64);
                        for pending in expired {
                            stats.bump(&stats.timed_out, |m| &m.timed_out);
                            let latency = now - pending.submitted_at;
                            let _ = pending.reply.send(QueryResponse {
                                outcome: QueryOutcome::TimedOut,
                                route: None,
                                latency,
                                served_epsilon: None,
                            });
                        }
                        if live.is_empty() {
                            return;
                        }
                        match batch_txs[shard].send(ShardBatch {
                            seq,
                            trigger,
                            epsilon,
                            requests: live,
                        }) {
                            Ok(()) => {
                                seq += 1;
                                stats.bump(&stats.batches, |m| &m.batches);
                                if epsilon.is_some() {
                                    stats.bump(&stats.approx_batches, |m| &m.approx_batches);
                                }
                                match trigger {
                                    BatchTrigger::Size => {
                                        stats.bump(&stats.size_triggered, |m| &m.size_triggered)
                                    }
                                    BatchTrigger::Deadline => stats
                                        .bump(&stats.deadline_triggered, |m| &m.deadline_triggered),
                                    BatchTrigger::Drain => {
                                        stats.bump(&stats.drain_triggered, |m| &m.drain_triggered)
                                    }
                                }
                            }
                            Err(mpsc::SendError(batch)) => {
                                // The shard worker is gone without being
                                // told to stop — it can only have been
                                // killed from outside (workers catch
                                // query panics). Answer the whole batch
                                // as Shutdown rather than panicking the
                                // batcher and stranding every other
                                // ticket.
                                for pending in batch.requests {
                                    let latency = now - pending.submitted_at;
                                    let _ = pending.reply.send(QueryResponse {
                                        outcome: QueryOutcome::Shutdown,
                                        route: None,
                                        latency,
                                        served_epsilon: None,
                                    });
                                }
                            }
                        }
                    };
                loop {
                    // Blocking recv while idle; with buffered requests,
                    // sleep only until the earliest buffered deadline
                    // (floored at 1 ms scheduling granularity, capped at
                    // `max_wait`), so wall-clock deadlines overshoot by
                    // at most that floor plus batch processing — even
                    // while other shards keep receiving traffic, every
                    // iteration recomputes the remaining time. Virtual
                    // clocks advance only at submissions, so for them
                    // the timeout wake re-reads an unchanged `now` — its
                    // sweep only ever fires on an *empty* channel (all
                    // sent arrivals admitted), which makes it equivalent
                    // to the next arrival's sweep: batch contents stay a
                    // pure function of the submission sequence.
                    let earliest = buffers
                        .iter()
                        .filter(|b| !b.requests.is_empty())
                        .map(|b| b.deadline)
                        .fold(f64::INFINITY, f64::min);
                    let received = if earliest.is_finite() {
                        let remaining = Duration::from_secs_f64((earliest - clock()).max(0.0));
                        let timeout = remaining.min(policy.max_wait).max(Duration::from_millis(1));
                        match sub_rx.recv_timeout(timeout) {
                            Ok(p) => Some(p),
                            Err(mpsc::RecvTimeoutError::Timeout) => None,
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    } else {
                        match sub_rx.recv() {
                            Ok(p) => Some(p),
                            Err(_) => break,
                        }
                    };
                    match received {
                        Some(pending) => {
                            // Deadline sweep *before* admitting the new
                            // arrival, keyed on its submit timestamp: an
                            // expired buffer dispatches without the new
                            // request, exactly as if the timeout wake had
                            // won the race — batch contents are a pure
                            // function of the submission sequence.
                            let t = pending.submitted_at;
                            for shard in 0..shards {
                                if !buffers[shard].requests.is_empty()
                                    && buffers[shard].deadline <= t
                                {
                                    flush(&mut buffers, shard, BatchTrigger::Deadline);
                                }
                            }
                            // Routing consults the query's shape; a
                            // malformed query that panics the affinity
                            // computation is quarantined right here, so
                            // it cannot take the batcher down.
                            let shard = match catch_unwind(AssertUnwindSafe(|| {
                                sessions.shard_of(&pending.query)
                            })) {
                                Ok(shard) => shard,
                                Err(payload) => {
                                    stats.queued.fetch_sub(1, Ordering::Relaxed);
                                    stats.bump(&stats.quarantined, |m| &m.quarantined);
                                    let latency = clock() - pending.submitted_at;
                                    let _ = pending.reply.send(QueryResponse {
                                        outcome: QueryOutcome::Panicked {
                                            message: panic_message(payload),
                                        },
                                        route: None,
                                        latency,
                                        served_epsilon: None,
                                    });
                                    continue;
                                }
                            };
                            if buffers[shard].requests.is_empty() {
                                buffers[shard].deadline = pending.submitted_at + max_wait_secs;
                            }
                            buffers[shard].requests.push(pending);
                            let depth = stats.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                            stats.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
                            if buffers[shard].requests.len() >= policy.max_batch {
                                flush(&mut buffers, shard, BatchTrigger::Size);
                            }
                        }
                        None => {
                            // Timeout wake: flush whatever expired. The
                            // channel was empty for the whole timeout, so
                            // no admitted-but-unswept arrival exists and
                            // the sweep matches what the next arrival
                            // would do.
                            let now = clock();
                            for shard in 0..shards {
                                if !buffers[shard].requests.is_empty()
                                    && buffers[shard].deadline <= now
                                {
                                    flush(&mut buffers, shard, BatchTrigger::Deadline);
                                }
                            }
                        }
                    }
                }
                // Shutdown: drain whatever is left, in shard order —
                // every buffered ticket gets an answer before the
                // workers are released.
                for shard in 0..shards {
                    flush(&mut buffers, shard, BatchTrigger::Drain);
                }
                // `batch_txs` drop here, terminating the shard workers.
            });
        }

        let handle = ServiceHandle {
            tx: Mutex::new(sub_tx),
            clock: Arc::clone(&clock),
            max_queue: config.max_queue,
            stats: Arc::clone(&stats),
            obs: obs.clone(),
            sessions,
        };
        let out = body(&handle);
        // Dropping the handle closes the submit channel: the batcher
        // drains and exits, the workers follow, and the scope joins them.
        drop(handle);
        out
    });
    let final_stats = stats.snapshot(
        sessions.cache_stats_per_shard(),
        sessions.subtree_stats_per_shard(),
    );
    (out, final_stats)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use mpq_catalog::fault::{query_digest, silence_injected_panics, Fault, FaultPlan};
    use mpq_catalog::generator::{generate_workload, GeneratorConfig, WorkloadConfig};
    use mpq_catalog::graph::Topology;
    use mpq_cloud::model::CloudCostModel;
    use mpq_core::grid_space::GridSpace;
    use mpq_core::session::{OptimizerSession, SessionConfig};
    use mpq_core::OptimizerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn workload(n: usize, batch: usize, overlap: f64, seed: u64) -> Vec<Query> {
        let cfg = WorkloadConfig::uniform(
            GeneratorConfig::paper(n, Topology::Chain, 1),
            batch,
            overlap,
        );
        generate_workload(&cfg, &mut StdRng::seed_from_u64(seed)).queries
    }

    /// A workload of digest-distinct queries — fault plans key on the
    /// content digest, so tests poisoning "query i" need distinctness.
    fn distinct_workload(n: usize, batch: usize, seed: u64) -> Vec<Query> {
        let queries = workload(n, batch, 0.0, seed);
        let digests: HashSet<u64> = queries.iter().map(query_digest).collect();
        assert_eq!(digests.len(), queries.len(), "pick a different seed");
        queries
    }

    fn sessions<'m>(
        model: &'m CloudCostModel,
        shards: usize,
        capacity: Option<usize>,
    ) -> ShardedSession<'m, GridSpace, CloudCostModel> {
        sessions_with_plan(model, shards, capacity, None)
    }

    fn sessions_with_plan<'m>(
        model: &'m CloudCostModel,
        shards: usize,
        capacity: Option<usize>,
        plan: Option<&Arc<FaultPlan>>,
    ) -> ShardedSession<'m, GridSpace, CloudCostModel> {
        let opt = OptimizerConfig::default_for(1);
        let mut cfg = SessionConfig::new(opt.clone());
        cfg.cache_capacity = capacity;
        if let Some(plan) = plan {
            cfg.fault_hook = Some(plan.hook(|_| {}));
        }
        ShardedSession::build(shards, model, &cfg, move || {
            GridSpace::for_unit_box(1, &opt, 2).unwrap()
        })
    }

    /// Plain one-by-one reference run (the determinism oracle).
    fn reference(queries: &[Query], model: &CloudCostModel) -> Vec<MpqSolution<GridSpace>> {
        let opt = OptimizerConfig::default_for(1);
        queries
            .iter()
            .map(|q| {
                let space = GridSpace::for_unit_box(1, &opt, 2).unwrap();
                let session = OptimizerSession::new(space, model, opt.clone());
                session.optimize(q)
            })
            .collect()
    }

    /// Service responses equal plain one-by-one session runs bit for bit.
    #[test]
    fn service_matches_plain_session() {
        let model = CloudCostModel::default();
        let queries = workload(3, 5, 0.5, 11);
        let reference = reference(&queries, &model);
        let shard_sessions = sessions(&model, 2, None);
        let config = ServiceConfig::new(BatchPolicy::new(2, Duration::from_millis(1)));
        let (responses, stats) = serve(&shard_sessions, config, |handle| {
            let tickets: Vec<_> = queries.iter().map(|q| handle.submit(q.clone())).collect();
            tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
        });
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(
            stats.size_triggered + stats.deadline_triggered + stats.drain_triggered,
            stats.batches,
            "every batch carries exactly one trigger"
        );
        for (resp, reference) in responses.into_iter().zip(&reference) {
            assert!(resp.latency >= 0.0);
            let route = resp.route.expect("completed response carries a route");
            assert!(route.shard < 2);
            let solution = resp.expect_ok();
            assert_eq!(solution.stats.plans_created, reference.stats.plans_created);
            assert_eq!(solution.stats.plans_pruned, reference.stats.plans_pruned);
            assert_eq!(solution.plans.len(), reference.plans.len());
        }
    }

    /// With a virtual clock frozen at 0, only the size trigger (and the
    /// final drain) can fire, and batch sizes obey `max_batch`.
    #[test]
    fn size_trigger_bounds_batches() {
        let model = CloudCostModel::default();
        let queries = workload(3, 7, 1.0, 3);
        let shard_sessions = sessions(&model, 2, None);
        let config = ServiceConfig::new(BatchPolicy::new(3, Duration::from_secs(3600)))
            .with_clock(VirtualClock::new().clock());
        // The 7th request only flushes at drain, so tickets are waited
        // *after* `serve` (responses buffer in their channels).
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            queries
                .iter()
                .map(|q| handle.submit(q.clone()))
                .collect::<Vec<_>>()
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(stats.deadline_triggered, 0, "frozen clock, huge deadline");
        // Identical queries share one affinity → one shard takes all 7:
        // two size batches of 3 and a drained single.
        assert_eq!(stats.size_triggered, 2);
        assert_eq!(stats.drain_triggered, 1);
        for resp in &responses {
            assert_eq!(resp.kind(), OutcomeKind::Ok);
            assert!(resp.route.unwrap().batch_size <= 3);
            assert_eq!(resp.latency, 0.0, "virtual clock never advanced");
        }
        let busy: Vec<&ShardStats> = stats.per_shard.iter().filter(|s| s.queries > 0).collect();
        assert_eq!(busy.len(), 1, "one affinity → one shard");
        assert_eq!(busy[0].queries, 7);
        assert_eq!(busy[0].restarts, 0, "no faults, no restarts");
        assert!(
            busy[0].cache.hits + busy[0].subtree.hits > 0,
            "identical queries share lifts or whole subtrees"
        );
    }

    /// Advancing the virtual clock past the deadline dispatches a partial
    /// batch on the next arrival.
    #[test]
    fn deadline_trigger_fires_on_virtual_clock() {
        let model = CloudCostModel::default();
        let queries = workload(3, 3, 1.0, 5);
        let shard_sessions = sessions(&model, 1, None);
        let vclock = VirtualClock::new();
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_micros(50)))
            .with_clock(vclock.clock());
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            let t0 = handle.submit(queries[0].clone());
            // Advance the clock past the 50µs deadline; the next arrival
            // sweeps the expired buffer before joining it.
            vclock.advance_to_micros(100);
            let t1 = handle.submit(queries[1].clone());
            let t2 = handle.submit(queries[2].clone());
            // t0 completes in-flight; t1/t2 flush at drain, so all waits
            // happen after `serve`.
            vec![t0, t1, t2]
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        let routes: Vec<BatchRoute> = responses.iter().map(|r| r.route.unwrap()).collect();
        assert_eq!(routes[0].trigger, BatchTrigger::Deadline);
        assert_eq!(routes[0].batch_size, 1);
        assert!((responses[0].latency - 1e-4).abs() < 1e-9);
        assert_eq!(routes[1].trigger, BatchTrigger::Drain);
        assert_eq!(routes[2].trigger, BatchTrigger::Drain);
        assert_eq!(stats.deadline_triggered, 1);
        assert_eq!(stats.drain_triggered, 1);
        assert_eq!(stats.queue_depth, 0, "nothing left buffered");
        assert_eq!(stats.queue_depth_peak, 2);
    }

    /// Tiny cache capacities evict but never change results.
    #[test]
    fn tiny_capacity_identical_results() {
        let model = CloudCostModel::default();
        let queries = workload(3, 6, 1.0, 9);
        let run = |capacity: Option<usize>| {
            let shard_sessions = sessions(&model, 2, capacity);
            let config = ServiceConfig::new(BatchPolicy::new(2, Duration::from_millis(1)));
            serve(&shard_sessions, config, |handle| {
                let tickets: Vec<_> = queries.iter().map(|q| handle.submit(q.clone())).collect();
                tickets
                    .into_iter()
                    .map(|t| {
                        let s = t.wait().expect_ok();
                        (s.stats.plans_created, s.plans.len())
                    })
                    .collect::<Vec<_>>()
            })
        };
        let (unbounded, _) = run(None);
        let (bounded, stats) = run(Some(1));
        assert_eq!(unbounded, bounded);
        let evictions: u64 = stats.per_shard.iter().map(|s| s.cache.evictions).sum();
        assert!(evictions > 0, "capacity 1 must evict on 6 shared queries");
    }

    /// Mid-run stats snapshots are coherent and percentiles ordered.
    #[test]
    fn stats_snapshot_mid_run() {
        let model = CloudCostModel::default();
        let queries = workload(2, 4, 0.0, 7);
        let shard_sessions = sessions(&model, 4, None);
        let config = ServiceConfig::new(BatchPolicy::new(1, Duration::from_millis(1)));
        let ((), stats) = serve(&shard_sessions, config, |handle| {
            let tickets: Vec<_> = queries.iter().map(|q| handle.submit(q.clone())).collect();
            for t in tickets {
                t.wait();
            }
            let mid = handle.stats();
            assert_eq!(mid.completed, 4);
            assert!(mid.latency_p50 <= mid.latency_p95);
            assert!(mid.lps_solved > 0);
        });
        assert_eq!(stats.batches, 4, "max_batch 1 → one batch per query");
        assert_eq!(stats.size_triggered, 4);
        let shard_queries: u64 = stats.per_shard.iter().map(|s| s.queries).sum();
        assert_eq!(shard_queries, 4);
    }

    /// The acceptance-criterion demo: a poison query submitted alongside
    /// healthy ones into one shared (drain-triggered) batch neither
    /// aborts the process nor loses any healthy answer — and the healthy
    /// answers stay bit-identical to a plain session.
    #[test]
    fn poison_query_cannot_kill_healthy_ones() {
        silence_injected_panics();
        let model = CloudCostModel::default();
        let queries = distinct_workload(3, 4, 7);
        let reference = reference(&queries, &model);
        let mut plan = FaultPlan::new();
        plan.mark(&queries[1], Fault::poison());
        let plan = Arc::new(plan);
        let shard_sessions = sessions_with_plan(&model, 1, None, Some(&plan));
        // Frozen clock + huge batch: everything rides one drain batch.
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_secs(3600)))
            .with_clock(VirtualClock::new().clock());
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            queries
                .iter()
                .map(|q| handle.submit(q.clone()))
                .collect::<Vec<_>>()
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        for (i, (resp, reference)) in responses.into_iter().zip(&reference).enumerate() {
            let route = resp.route.expect("dispatched responses carry a route");
            assert_eq!(route.trigger, BatchTrigger::Drain);
            assert_eq!(route.batch_size, 4, "poison rides the shared batch");
            if i == 1 {
                match resp.outcome {
                    QueryOutcome::Panicked { ref message } => {
                        assert!(
                            message.contains(mpq_catalog::fault::INJECTED_FAULT),
                            "panic payload surfaces to the client: {message}"
                        );
                    }
                    ref other => panic!("poison query got {:?}", other.kind()),
                }
            } else {
                let solution = resp.expect_ok();
                assert_eq!(solution.stats.plans_created, reference.stats.plans_created);
                assert_eq!(solution.stats.plans_pruned, reference.stats.plans_pruned);
                assert_eq!(solution.plans.len(), reference.plans.len());
            }
        }
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.submitted, 4);
        assert!(
            stats.per_shard[0].restarts >= 1,
            "the caught panic counts as a restart"
        );
    }

    /// Bisection attributes panics exactly: with 1 poison (then 2) in a
    /// six-query batch, precisely the marked queries are quarantined.
    #[test]
    fn bisection_attribution_is_exact() {
        silence_injected_panics();
        let model = CloudCostModel::default();
        let queries = distinct_workload(4, 6, 13);
        for poisoned in [vec![1usize], vec![1, 4]] {
            let mut plan = FaultPlan::new();
            for &i in &poisoned {
                plan.mark(&queries[i], Fault::poison());
            }
            let plan = Arc::new(plan);
            let shard_sessions = sessions_with_plan(&model, 1, None, Some(&plan));
            let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_secs(3600)))
                .with_clock(VirtualClock::new().clock());
            let (tickets, stats) = serve(&shard_sessions, config, |handle| {
                queries
                    .iter()
                    .map(|q| handle.submit(q.clone()))
                    .collect::<Vec<_>>()
            });
            let kinds: Vec<OutcomeKind> = tickets.into_iter().map(|t| t.wait().kind()).collect();
            for (i, kind) in kinds.iter().enumerate() {
                let expected = if poisoned.contains(&i) {
                    OutcomeKind::Panicked
                } else {
                    OutcomeKind::Ok
                };
                assert_eq!(*kind, expected, "query {i} with poisons {poisoned:?}");
            }
            assert_eq!(stats.quarantined, poisoned.len() as u64);
            assert_eq!(stats.completed, (queries.len() - poisoned.len()) as u64);
        }
    }

    /// A size-triggered batch isolates its poison.
    #[test]
    fn size_triggered_batch_isolates_poison() {
        silence_injected_panics();
        let model = CloudCostModel::default();
        let queries = distinct_workload(3, 4, 7);
        let mut plan = FaultPlan::new();
        plan.mark(&queries[0], Fault::poison());
        let plan = Arc::new(plan);
        let shard_sessions = sessions_with_plan(&model, 1, None, Some(&plan));
        let config = ServiceConfig::new(BatchPolicy::new(2, Duration::from_secs(3600)))
            .with_clock(VirtualClock::new().clock());
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            queries
                .iter()
                .map(|q| handle.submit(q.clone()))
                .collect::<Vec<_>>()
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(responses[0].kind(), OutcomeKind::Panicked);
        assert_eq!(responses[0].route.unwrap().trigger, BatchTrigger::Size);
        for resp in &responses[1..] {
            assert_eq!(resp.kind(), OutcomeKind::Ok);
        }
        assert_eq!(stats.size_triggered, 2);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.completed, 3);
    }

    /// A deadline-triggered batch isolates its poison.
    #[test]
    fn deadline_triggered_batch_isolates_poison() {
        silence_injected_panics();
        let model = CloudCostModel::default();
        let queries = distinct_workload(3, 3, 7);
        let mut plan = FaultPlan::new();
        plan.mark(&queries[0], Fault::poison());
        let plan = Arc::new(plan);
        let shard_sessions = sessions_with_plan(&model, 1, None, Some(&plan));
        let vclock = VirtualClock::new();
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_micros(50)))
            .with_clock(vclock.clock());
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            let t0 = handle.submit(queries[0].clone());
            vclock.advance_to_micros(100);
            let t1 = handle.submit(queries[1].clone());
            let t2 = handle.submit(queries[2].clone());
            vec![t0, t1, t2]
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(responses[0].kind(), OutcomeKind::Panicked);
        assert_eq!(responses[0].route.unwrap().trigger, BatchTrigger::Deadline);
        assert_eq!(responses[1].kind(), OutcomeKind::Ok);
        assert_eq!(responses[1].route.unwrap().trigger, BatchTrigger::Drain);
        assert_eq!(responses[2].kind(), OutcomeKind::Ok);
        assert_eq!(stats.deadline_triggered, 1);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.completed, 2);
    }

    /// Admission control rejects beyond `max_queue` and the rejected
    /// tickets resolve immediately, while admitted ones complete.
    #[test]
    fn admission_control_rejects_when_full() {
        let model = CloudCostModel::default();
        let queries = workload(3, 5, 1.0, 3);
        let shard_sessions = sessions(&model, 1, None);
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_secs(3600)))
            .with_clock(VirtualClock::new().clock())
            .with_max_queue(2);
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            let mut tickets: Vec<_> = queries.iter().map(|q| handle.submit(q.clone())).collect();
            // Rejection is synchronous: the 5th ticket is already
            // resolved inside the body, long before any drain.
            // (`try_wait` consumes the response, so the ticket is
            // dropped here rather than waited again below.)
            let last = tickets.pop().unwrap();
            let kind = last.try_wait().map(|r| r.kind());
            assert_eq!(kind, Some(OutcomeKind::Rejected));
            tickets
        });
        let kinds: Vec<OutcomeKind> = tickets.into_iter().map(|t| t.wait().kind()).collect();
        assert_eq!(
            kinds,
            vec![
                OutcomeKind::Ok,
                OutcomeKind::Ok,
                OutcomeKind::Rejected,
                OutcomeKind::Rejected,
            ]
        );
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.completed, 2);
        assert_eq!(
            stats.queue_depth_peak, 2,
            "never more than max_queue buffered"
        );
    }

    /// An expired per-query deadline resolves `TimedOut` at dispatch,
    /// without running the optimizer; fresh queries in the same flush
    /// complete normally.
    #[test]
    fn per_query_deadline_times_out_at_dispatch() {
        let model = CloudCostModel::default();
        let queries = workload(3, 3, 1.0, 5);
        let shard_sessions = sessions(&model, 1, None);
        let vclock = VirtualClock::new();
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_secs(3600)))
            .with_clock(vclock.clock());
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            // 50µs budget; the clock then jumps to 100µs before anything
            // dispatches, so q0 is dead on arrival at the drain flush.
            let t0 = handle.submit(SubmittedQuery::new(queries[0].clone()).with_deadline(5e-5));
            vclock.advance_to_micros(100);
            let t1 = handle.submit(queries[1].clone());
            let t2 = handle.submit(queries[2].clone());
            vec![t0, t1, t2]
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(responses[0].kind(), OutcomeKind::TimedOut);
        assert!(responses[0].route.is_none(), "never reached a worker");
        assert!((responses[0].latency - 1e-4).abs() < 1e-9);
        assert_eq!(responses[1].kind(), OutcomeKind::Ok);
        assert_eq!(
            responses[1].route.unwrap().batch_size,
            2,
            "the expired query left the batch before dispatch"
        );
        assert_eq!(responses[2].kind(), OutcomeKind::Ok);
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.completed, 2);
        assert!(stats.lps_solved > 0);
    }

    /// A deadline-triggered batch under a `DeadlineOnly` approx policy
    /// is served at ε: the response is stamped, the counters move, and
    /// exact (size/drain) batches stay unstamped.
    #[test]
    fn approx_policy_downgrades_deadline_batches() {
        let model = CloudCostModel::default();
        let queries = workload(3, 3, 1.0, 5);
        let shard_sessions = sessions(&model, 1, None);
        let vclock = VirtualClock::new();
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_micros(50)))
            .with_clock(vclock.clock())
            .with_approx(ApproxPolicy::deadline_only(0.1));
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            let t0 = handle.submit(queries[0].clone());
            vclock.advance_to_micros(100);
            let t1 = handle.submit(queries[1].clone());
            let t2 = handle.submit(queries[2].clone());
            vec![t0, t1, t2]
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(responses[0].route.unwrap().trigger, BatchTrigger::Deadline);
        assert_eq!(responses[0].served_epsilon, Some(0.1));
        assert_eq!(responses[0].kind(), OutcomeKind::Ok);
        for resp in &responses[1..] {
            assert_eq!(resp.route.unwrap().trigger, BatchTrigger::Drain);
            assert_eq!(resp.served_epsilon, None, "drain batches run exact");
        }
        assert_eq!(stats.approx_batches, 1);
        assert_eq!(stats.approx_served, 1);
        assert_eq!(stats.completed, 3);
        assert_eq!(
            stats.submitted,
            stats.completed + stats.rejected + stats.timed_out + stats.quarantined,
            "conservation holds with ε-served completions"
        );
        assert!(stats.approx_served <= stats.completed);
    }

    /// A `QueueDepth` gate keeps lone deadline flushes exact and
    /// downgrades only under real buffered pressure.
    #[test]
    fn queue_depth_gate_requires_pressure() {
        let model = CloudCostModel::default();
        // Two affinity groups so two shard buffers can hold requests at
        // the same flush.
        let mut queries = workload(3, 2, 1.0, 5);
        queries.extend(workload(3, 2, 1.0, 23));
        let shard_sessions = sessions(&model, 2, None);
        let vclock = VirtualClock::new();
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_micros(50)))
            .with_clock(vclock.clock())
            .with_approx(ApproxPolicy::queue_depth(0.1, 2));
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            // Round 1: a single buffered request expires alone —
            // below the depth-2 gate, so it must be served exact.
            let t0 = handle.submit(queries[0].clone());
            vclock.advance_to_micros(100);
            let t1 = handle.submit(queries[2].clone());
            // Round 2: t1's buffer plus t2's makes depth 2 when the
            // clock expires them — now the gate opens.
            let t2 = handle.submit(queries[1].clone());
            vclock.advance_to_micros(200);
            let t3 = handle.submit(queries[3].clone());
            vec![t0, t1, t2, t3]
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(responses[0].route.unwrap().trigger, BatchTrigger::Deadline);
        assert_eq!(
            responses[0].served_epsilon, None,
            "a lone expired request is below the pressure gate"
        );
        let deadline_approx = responses
            .iter()
            .filter(|r| {
                r.route
                    .is_some_and(|route| route.trigger == BatchTrigger::Deadline)
                    && r.served_epsilon == Some(0.1)
            })
            .count();
        assert!(
            deadline_approx >= 1,
            "pressured deadline flushes must downgrade (got {responses:?})"
        );
        assert_eq!(stats.approx_served as usize, deadline_approx);
        assert!(stats.approx_batches >= 1);
        assert_eq!(
            stats.submitted,
            stats.completed + stats.rejected + stats.timed_out + stats.quarantined
        );
    }

    /// Quarantine bisection preserves the batch's ε: healthy batch-mates
    /// of a poison query in a downgraded batch still come back stamped.
    #[test]
    fn bisection_preserves_batch_epsilon() {
        silence_injected_panics();
        let model = CloudCostModel::default();
        let queries = distinct_workload(3, 3, 7);
        let mut plan = FaultPlan::new();
        plan.mark(&queries[0], Fault::poison());
        let plan = Arc::new(plan);
        let shard_sessions = sessions_with_plan(&model, 1, None, Some(&plan));
        let vclock = VirtualClock::new();
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_micros(50)))
            .with_clock(vclock.clock())
            .with_approx(ApproxPolicy::deadline_only(0.1));
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            let t0 = handle.submit(queries[0].clone());
            let t1 = handle.submit(queries[1].clone());
            let t2 = handle.submit(queries[2].clone());
            // All three buffered; expire them into one deadline batch
            // via the timeout sweep by advancing past the deadline and
            // letting the drain happen after the body returns? No — a
            // frozen clock never expires buffers. Submit a 4th after
            // advancing so the arrival sweep flushes the batch.
            vclock.advance_to_micros(100);
            let t3 = handle.submit(queries[1].clone());
            vec![t0, t1, t2, t3]
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(responses[0].kind(), OutcomeKind::Panicked);
        assert_eq!(responses[0].route.unwrap().trigger, BatchTrigger::Deadline);
        assert_eq!(
            responses[0].served_epsilon,
            Some(0.1),
            "the poison's batch ran at ε"
        );
        for resp in &responses[1..3] {
            assert_eq!(resp.kind(), OutcomeKind::Ok);
            assert_eq!(
                resp.served_epsilon,
                Some(0.1),
                "bisection replays keep the batch's ε"
            );
        }
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.approx_served, 3 - 1);
        assert_eq!(
            stats.submitted,
            stats.completed + stats.rejected + stats.timed_out + stats.quarantined,
            "conservation holds under ε-served quarantine batches"
        );
    }

    /// `wait()` on a ticket whose service died resolves `Shutdown`
    /// instead of panicking.
    #[test]
    fn wait_resolves_shutdown_when_service_died() {
        let (tx, rx) = mpsc::channel::<QueryResponse<GridSpace>>();
        drop(tx);
        let ticket = ServiceTicket { rx };
        let resp = ticket.wait();
        assert_eq!(resp.kind(), OutcomeKind::Shutdown);
        assert!(resp.route.is_none());
    }

    /// `wait_timeout` under a frozen virtual clock expires on the
    /// real-time budget and resolves `TimedOut` — the caller can never
    /// deadlock, which is the whole point of the method.
    #[test]
    fn wait_timeout_cannot_deadlock_on_frozen_clock() {
        let (_tx, rx) = mpsc::channel::<QueryResponse<GridSpace>>();
        let ticket = ServiceTicket { rx };
        let vclock = VirtualClock::new(); // frozen at 0 forever
        let clock = vclock.clock();
        let resp = ticket.wait_timeout(&clock, Duration::from_millis(10));
        assert_eq!(resp.kind(), OutcomeKind::TimedOut);
        assert!(resp.route.is_none());
        assert_eq!(resp.latency, 0.0, "no service-clock time passed");
        // Note `_tx` is still alive: the service "exists" but never
        // answers — recv_timeout (not recv) is what returned.
    }

    /// `wait_timeout` delivers a ready response untouched and resolves
    /// `Shutdown` when the service died, exactly like `wait`.
    #[test]
    fn wait_timeout_delivers_and_maps_shutdown() {
        let clock: ServiceClock = VirtualClock::new().clock();
        let (tx, rx) = mpsc::channel::<QueryResponse<GridSpace>>();
        tx.send(QueryResponse {
            outcome: QueryOutcome::Rejected,
            route: None,
            latency: 1.5,
            served_epsilon: None,
        })
        .unwrap();
        let ticket = ServiceTicket { rx };
        let resp = ticket.wait_timeout(&clock, Duration::from_secs(5));
        assert_eq!(resp.kind(), OutcomeKind::Rejected);
        assert_eq!(resp.latency, 1.5);
        let (tx, rx) = mpsc::channel::<QueryResponse<GridSpace>>();
        drop(tx);
        let ticket = ServiceTicket { rx };
        let resp = ticket.wait_timeout(&clock, Duration::from_secs(5));
        assert_eq!(resp.kind(), OutcomeKind::Shutdown);
    }

    /// In-process snapshots always report the wire counters as zero and
    /// satisfy the conservation identity.
    #[test]
    fn in_process_snapshot_has_no_wire_counters() {
        let model = CloudCostModel::default();
        let queries = workload(3, 3, 0.5, 21);
        let shard_sessions = sessions(&model, 2, None);
        let config = ServiceConfig::new(BatchPolicy::new(2, Duration::from_millis(1)));
        let (_, stats) = serve(&shard_sessions, config, |handle| {
            let tickets: Vec<_> = queries.iter().map(|q| handle.submit(q.clone())).collect();
            tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
        });
        assert!(stats.conserves(), "conservation identity after shutdown");
        assert_eq!(
            (
                stats.unavailable,
                stats.retries,
                stats.reconnects,
                stats.dropped
            ),
            (0, 0, 0, 0),
            "no wire, no wire counters"
        );
    }

    /// The latency histogram that replaced the 64Ki ring: no lock to
    /// poison, NaN before the first completion, and percentiles that are
    /// bucket representatives within the histogram's 12.5 % relative
    /// error of the recorded value.
    #[test]
    fn latency_histogram_replaces_the_ring() {
        let stats = StatsShared::new(1, &Obs::off());
        let empty = stats.snapshot(vec![CacheStats::default()], vec![CacheStats::default()]);
        assert!(
            empty.latency_p50.is_nan(),
            "NaN before the first completion"
        );
        assert!(empty.latency_p95.is_nan());
        stats.push_latency(1.0);
        let snap = stats.snapshot(vec![CacheStats::default()], vec![CacheStats::default()]);
        assert!(
            (snap.latency_p50 - 1.0).abs() <= 0.125,
            "{}",
            snap.latency_p50
        );
        assert!(
            (snap.latency_p95 - 1.0).abs() <= 0.125,
            "{}",
            snap.latency_p95
        );
        assert!(snap.latency_p50 <= snap.latency_p95);
    }

    /// With observability on, every lifecycle counter is mirrored into
    /// the registry at its bump site: each `ServiceStats` field equals
    /// its `service_*` registry counter, the conservation identity
    /// re-derives from the registry alone, and the latency percentiles
    /// come from the registry's own `service_latency_seconds` histogram.
    #[test]
    fn registry_mirrors_service_stats() {
        let model = CloudCostModel::default();
        let queries = workload(3, 5, 1.0, 3);
        let shard_sessions = sessions(&model, 1, None);
        let vclock = VirtualClock::new();
        let vc = vclock.clone();
        let obs = Obs::with_clock(true, Arc::new(move || vc.now_micros()));
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_secs(3600)))
            .with_clock(vclock.clock())
            .with_max_queue(2)
            .with_obs(obs.clone());
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            queries
                .iter()
                .map(|q| handle.submit(q.clone()))
                .collect::<Vec<_>>()
        });
        for t in tickets {
            t.wait();
        }
        assert!(stats.conserves());
        assert!(stats.rejected > 0 && stats.completed > 0, "{stats:?}");
        let registry = obs.registry().expect("enabled handle");
        let get = |name: &str| registry.counter(name).get();
        assert_eq!(get("service_submitted"), stats.submitted);
        assert_eq!(get("service_completed"), stats.completed);
        assert_eq!(get("service_rejected"), stats.rejected);
        assert_eq!(get("service_timed_out"), stats.timed_out);
        assert_eq!(get("service_quarantined"), stats.quarantined);
        assert_eq!(get("service_batches"), stats.batches);
        assert_eq!(get("service_size_triggered"), stats.size_triggered);
        assert_eq!(get("service_deadline_triggered"), stats.deadline_triggered);
        assert_eq!(get("service_drain_triggered"), stats.drain_triggered);
        assert_eq!(get("service_approx_batches"), stats.approx_batches);
        assert_eq!(get("service_approx_served"), stats.approx_served);
        assert_eq!(get("service_lps_solved"), stats.lps_solved);
        // The conservation identity, re-derived purely from the registry
        // (in-process serving: unavailable is identically zero).
        assert_eq!(
            get("service_completed")
                + get("service_rejected")
                + get("service_timed_out")
                + get("service_quarantined"),
            get("service_submitted"),
            "registry counters satisfy the conservation identity"
        );
        // Percentiles in the snapshot ARE the registry histogram's.
        let histogram = registry.histogram("service_latency_seconds");
        assert_eq!(histogram.count(), stats.completed);
        assert_eq!(histogram.quantile_secs(0.5), stats.latency_p50);
        assert_eq!(histogram.quantile_secs(0.95), stats.latency_p95);
        // And the lifecycle left a span trail: one submit span per
        // submission, at least one flush and one shard batch.
        let spans = obs.spans();
        let count = |name: &str| spans.iter().filter(|s| s.name == name).count() as u64;
        assert_eq!(count("submit"), stats.submitted);
        assert!(count("batch_flush") >= 1);
        assert!(count("shard_batch") >= 1);
        // Exposition over the live registry parses cleanly.
        let text = registry.expose();
        let parsed = mpq_obs::parse_exposition(&text).expect("exposition parses");
        assert!(parsed.iter().any(|(n, _)| n == "service_submitted"));
    }
}
