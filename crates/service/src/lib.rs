//! `mpq-service`: a long-running, concurrent optimizer service.
//!
//! The paper's value proposition is server-side: optimize once per
//! (query, shape), reuse the result across parameter instantiations and
//! arriving clients. The batch layer (`mpq_core::session`) already shares
//! cost lifts across the queries of one batch; this crate adds the
//! *service front-end* that turns arriving queries into batches:
//!
//! * **Batch accumulation** — arriving [`SubmittedQuery`]s buffer per
//!   shard and dispatch when either trigger of the [`BatchPolicy`] fires:
//!   the buffer reaches `max_batch` (*size* trigger) or the oldest
//!   buffered request has waited `max_wait` (*deadline* trigger —
//!   Trummer & Koch's randomized-MPQ line frames exactly this
//!   latency/quality trade-off: waiting longer buys more sharing).
//!   Shutdown flushes the rest (*drain* trigger).
//! * **Sharded sessions** — batches dispatch to one of N
//!   [`ShardedSession`] shards, chosen by the stable `OpShape`-derived
//!   affinity (`mpq_core::session::query_affinity`), so queries over the
//!   same tables land on the shard that already cached their lifted
//!   costs (the in-process form of sharding a workload across machines).
//! * **Completion tickets** — every submission returns a
//!   [`ServiceTicket`]; [`ServiceTicket::wait`] blocks on the request's
//!   own completion channel.
//! * **Bounded caches** — shard sessions built with a
//!   `SessionConfig::cache_capacity` evict deterministically
//!   (second-chance CLOCK, see `mpq_cost`), so a service that runs
//!   forever holds bounded memory.
//! * **Observability** — [`ServiceStats`] snapshots queue depth, batches
//!   formed, the trigger mix, per-shard cache hit/miss and p50/p95
//!   latency measured under a **caller-supplied clock**. With a
//!   [`VirtualClock`] stepped from a seeded arrival trace, batching
//!   decisions — batch contents and the trigger mix — replay
//!   bit-identically with no wall-clock dependence; the latency
//!   *percentiles* are approximate there (completion times are read
//!   while the submitter may still be advancing the clock), so treat
//!   them like any other measured-duration metric.
//!
//! # Determinism contract
//!
//! For a fixed set of queries, the service's **per-query plans, counters
//! and frontiers are bit-identical to optimizing the same queries one by
//! one through a plain `OptimizerSession`** — independent of batch
//! grouping, shard count, trigger timing and cache evictions. Batching
//! only regroups independent deterministic optimizations; shard spaces
//! are constructed identically; evicted lifts re-lift to bit-identical
//! values (lifts are pure in their shape). Only throughput counters
//! (`lps_solved` snapshots, cache hit/miss/eviction totals) depend on the
//! grouping. Enforced by `tests/service_proptest.rs` across random
//! traces × policies × shard counts × cache capacities.
//!
//! # Example
//!
//! ```
//! use mpq_core::prelude::*;
//! use mpq_core::session::SessionConfig;
//! use mpq_catalog::generator::{generate_workload, GeneratorConfig, WorkloadConfig};
//! use mpq_catalog::graph::Topology;
//! use mpq_cloud::model::CloudCostModel;
//! use mpq_service::{serve, BatchPolicy, ServiceConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::time::Duration;
//!
//! let cfg = WorkloadConfig::uniform(GeneratorConfig::paper(3, Topology::Chain, 1), 4, 1.0);
//! let workload = generate_workload(&cfg, &mut StdRng::seed_from_u64(1));
//! let model = CloudCostModel::default();
//! let opt = OptimizerConfig::default_for(1);
//! let sessions = ShardedSession::build(2, &model, &SessionConfig::new(opt.clone()), || {
//!     GridSpace::for_unit_box(1, &opt, 2).unwrap()
//! });
//! let config = ServiceConfig::new(BatchPolicy::new(2, Duration::from_millis(5)));
//! let (solutions, stats) = serve(&sessions, config, |handle| {
//!     let tickets: Vec<_> = workload.queries.iter()
//!         .map(|q| handle.submit(q.clone()))
//!         .collect();
//!     tickets.into_iter().map(|t| t.wait().solution).collect::<Vec<_>>()
//! });
//! assert_eq!(solutions.len(), 4);
//! assert_eq!(stats.completed, 4);
//! assert!(stats.batches >= 1);
//! ```

use mpq_catalog::Query;
use mpq_cloud::model::ParametricCostModel;
use mpq_core::rrpa::MpqSolution;
use mpq_core::session::ShardedSession;
use mpq_core::space::MpqSpace;
use mpq_cost::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// When an accumulating batch dispatches to its shard.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests buffered (size trigger).
    pub max_batch: usize,
    /// Dispatch once the oldest buffered request has waited this long
    /// under the service clock (deadline trigger) — the latency bound a
    /// request pays for batching.
    pub max_wait: Duration,
}

impl BatchPolicy {
    /// A policy with the given size and deadline triggers.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize, max_wait: Duration) -> Self {
        assert!(max_batch >= 1, "a batch needs room for at least one query");
        Self {
            max_batch,
            max_wait,
        }
    }
}

/// The service's notion of *now*, in seconds from an arbitrary origin.
/// Monotone non-decreasing by contract. The default is wall-clock
/// ([`ServiceConfig::new`]); tests and trace replays install a
/// [`VirtualClock`] ([`ServiceConfig::with_clock`]) that advances only
/// when told to, making deadline triggers replayable with no wall-clock
/// dependence.
pub type ServiceClock = Arc<dyn Fn() -> f64 + Send + Sync>;

/// A deterministic service clock for tests and trace replays: virtual
/// **microseconds**, advanced explicitly by the driver and read by the
/// service as seconds. Advancing takes a max, so the clock is monotone
/// even if drivers race. One `VirtualClock` pins the unit convention for
/// every replay site (the bench harness, unit tests, proptests).
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    micros: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock to `us` virtual microseconds (no-op if the
    /// clock is already past it).
    pub fn advance_to_micros(&self, us: u64) {
        self.micros.fetch_max(us, Ordering::Relaxed);
    }

    /// Advances the clock to `secs` virtual seconds.
    pub fn advance_to_secs(&self, secs: f64) {
        self.advance_to_micros((secs * 1e6) as u64);
    }

    /// The current virtual time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// The [`ServiceClock`] view of this clock (pass to
    /// [`ServiceConfig::with_clock`]).
    pub fn clock(&self) -> ServiceClock {
        let micros = Arc::clone(&self.micros);
        Arc::new(move || micros.load(Ordering::Relaxed) as f64 * 1e-6)
    }
}

/// Service configuration: the batch policy plus the clock.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Batch dispatch triggers.
    pub policy: BatchPolicy,
    /// The service clock (`None` = wall clock anchored at service start).
    pub clock: Option<ServiceClock>,
}

impl ServiceConfig {
    /// Wall-clock service over the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            policy,
            clock: None,
        }
    }

    /// Installs a caller-supplied clock (see [`ServiceClock`]).
    pub fn with_clock(mut self, clock: ServiceClock) -> Self {
        self.clock = Some(clock);
        self
    }
}

/// A query submitted to the service. (A struct, not a bare `Query`, so
/// per-request options — priorities, deadlines — can grow without
/// breaking the submit API.)
#[derive(Debug, Clone)]
pub struct SubmittedQuery {
    /// The query to optimize.
    pub query: Query,
}

impl From<Query> for SubmittedQuery {
    fn from(query: Query) -> Self {
        Self { query }
    }
}

/// Why a batch dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchTrigger {
    /// The buffer reached `max_batch`.
    Size,
    /// The oldest buffered request waited `max_wait`.
    Deadline,
    /// Service shutdown flushed the remainder.
    Drain,
}

/// One completed request: the solution plus how it travelled through the
/// service.
pub struct QueryResponse<S: MpqSpace> {
    /// The optimization result — bit-identical to a plain
    /// `OptimizerSession` run of the same query (the determinism
    /// contract; see the crate docs).
    pub solution: MpqSolution<S>,
    /// The shard that optimized the request.
    pub shard: usize,
    /// Sequence number of the batch it rode in.
    pub batch_seq: u64,
    /// Number of requests in that batch.
    pub batch_size: usize,
    /// Why the batch dispatched.
    pub trigger: BatchTrigger,
    /// Submit-to-completion latency in service-clock seconds.
    pub latency: f64,
}

/// Completion handle of one submission: a per-request channel the shard
/// worker answers exactly once.
pub struct ServiceTicket<S: MpqSpace> {
    rx: mpsc::Receiver<QueryResponse<S>>,
}

impl<S: MpqSpace> ServiceTicket<S> {
    /// Blocks until the request completes.
    ///
    /// A ticket outlives the service: responses buffer in the ticket's
    /// channel, so tickets can be waited **after** [`serve`] returns —
    /// shutdown drains every buffer first. That is also the safe pattern
    /// under a [`VirtualClock`] (or any non-advancing clock): waiting
    /// *inside* the `serve` body for a request whose batch has neither
    /// size-triggered nor passed its (frozen-clock) deadline blocks
    /// forever, because the drain flush only runs once the body returns.
    ///
    /// # Panics
    /// Panics if the service died before answering (a worker panic —
    /// which also propagates out of [`serve`] itself when its scope
    /// joins).
    pub fn wait(self) -> QueryResponse<S> {
        self.rx
            .recv()
            .expect("service terminated without answering the ticket")
    }

    /// Non-blocking poll: `Some` once the response is ready.
    pub fn try_wait(&self) -> Option<QueryResponse<S>> {
        self.rx.try_recv().ok()
    }
}

/// Per-shard service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Requests optimized by this shard.
    pub queries: u64,
    /// Batches dispatched to this shard.
    pub batches: u64,
    /// The shard session's cost-lifting cache counters
    /// (hit/miss/evictions).
    pub cache: CacheStats,
}

/// Snapshot of the service counters (see [`ServiceHandle::stats`] /
/// [`serve`]'s return value).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests accepted.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests currently buffered (accumulating, not yet dispatched).
    pub queue_depth: u64,
    /// Largest buffered count observed.
    pub queue_depth_peak: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches dispatched by the size trigger.
    pub size_triggered: u64,
    /// Batches dispatched by the deadline trigger.
    pub deadline_triggered: u64,
    /// Batches flushed at shutdown.
    pub drain_triggered: u64,
    /// LPs solved across all dispatched batches (summed per-batch deltas
    /// — exact: shards run one batch at a time).
    pub lps_solved: u64,
    /// Per-shard counters, indexed by shard.
    pub per_shard: Vec<ShardStats>,
    /// Median submit-to-completion latency in service-clock seconds over
    /// the most recent [`LATENCY_WINDOW`] completions (NaN before the
    /// first completion).
    pub latency_p50: f64,
    /// 95th-percentile latency in service-clock seconds over the same
    /// window (NaN before the first completion).
    pub latency_p95: f64,
}

/// Latency samples retained for the percentile snapshot: a ring of the
/// most recent completions, so a service that runs forever holds bounded
/// memory and `stats()` sorts a bounded sample.
pub const LATENCY_WINDOW: usize = 1 << 16;

/// Fixed-capacity ring of the most recent latency samples.
#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<f64>,
    /// Slot the next sample overwrites once the ring is full.
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, v: f64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(v);
        } else {
            self.samples[self.next] = v;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }
}

/// The lock/atomic-backed live counters behind [`ServiceStats`].
struct StatsShared {
    submitted: AtomicU64,
    completed: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    batches: AtomicU64,
    size_triggered: AtomicU64,
    deadline_triggered: AtomicU64,
    drain_triggered: AtomicU64,
    lps_solved: AtomicU64,
    shard_queries: Vec<AtomicU64>,
    shard_batches: Vec<AtomicU64>,
    latencies: Mutex<LatencyRing>,
}

impl StatsShared {
    fn new(shards: usize) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            size_triggered: AtomicU64::new(0),
            deadline_triggered: AtomicU64::new(0),
            drain_triggered: AtomicU64::new(0),
            lps_solved: AtomicU64::new(0),
            shard_queries: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_batches: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            latencies: Mutex::new(LatencyRing::default()),
        }
    }

    fn snapshot(&self, caches: Vec<CacheStats>) -> ServiceStats {
        let mut latencies = self
            .latencies
            .lock()
            .expect("latency log poisoned")
            .samples
            .clone();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let quantile = |q: f64| -> f64 {
            if latencies.is_empty() {
                return f64::NAN;
            }
            // Nearest-rank on the sorted sample.
            let rank = ((latencies.len() as f64) * q).ceil() as usize;
            latencies[rank.clamp(1, latencies.len()) - 1]
        };
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            size_triggered: self.size_triggered.load(Ordering::Relaxed),
            deadline_triggered: self.deadline_triggered.load(Ordering::Relaxed),
            drain_triggered: self.drain_triggered.load(Ordering::Relaxed),
            lps_solved: self.lps_solved.load(Ordering::Relaxed),
            per_shard: caches
                .into_iter()
                .enumerate()
                .map(|(i, cache)| ShardStats {
                    queries: self.shard_queries[i].load(Ordering::Relaxed),
                    batches: self.shard_batches[i].load(Ordering::Relaxed),
                    cache,
                })
                .collect(),
            latency_p50: quantile(0.50),
            latency_p95: quantile(0.95),
        }
    }
}

/// One buffered request travelling batcher → shard worker.
struct Pending<S: MpqSpace> {
    query: Query,
    submitted_at: f64,
    reply: mpsc::Sender<QueryResponse<S>>,
}

/// One dispatched batch.
struct ShardBatch<S: MpqSpace> {
    seq: u64,
    trigger: BatchTrigger,
    requests: Vec<Pending<S>>,
}

/// The submit-side handle passed to [`serve`]'s body closure.
pub struct ServiceHandle<'a, S: MpqSpace, M: ParametricCostModel + ?Sized> {
    // `mpsc::Sender` is `Send` but not `Sync`; the mutex makes the handle
    // shareable across client threads (submission rate is far below the
    // lock's throughput).
    tx: Mutex<mpsc::Sender<Pending<S>>>,
    clock: ServiceClock,
    stats: Arc<StatsShared>,
    sessions: &'a ShardedSession<'a, S, M>,
}

impl<S, M> ServiceHandle<'_, S, M>
where
    S: MpqSpace + Sync,
    S::Cost: Send + Sync,
    S::Region: Send + Sync,
    M: ParametricCostModel + ?Sized,
{
    /// Submits a query; returns the completion ticket. Accepts anything
    /// convertible into a [`SubmittedQuery`] (a bare `Query` works).
    pub fn submit(&self, query: impl Into<SubmittedQuery>) -> ServiceTicket<S> {
        let submitted = query.into();
        let (reply_tx, reply_rx) = mpsc::channel();
        let pending = Pending {
            query: submitted.query,
            submitted_at: (self.clock)(),
            reply: reply_tx,
        };
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx
            .lock()
            .expect("submit channel poisoned")
            .send(pending)
            .expect("service batcher terminated early");
        ServiceTicket { rx: reply_rx }
    }

    /// A live snapshot of the service counters (queue depth, batches,
    /// trigger mix, per-shard cache hit/miss, latency percentiles).
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot(self.sessions.cache_stats_per_shard())
    }

    /// The service clock (useful for clients that want to timestamp their
    /// own records consistently).
    pub fn now(&self) -> f64 {
        (self.clock)()
    }
}

/// One shard's accumulating buffer.
struct ShardBuffer<S: MpqSpace> {
    requests: Vec<Pending<S>>,
    /// Service-clock deadline of the oldest buffered request
    /// (`submitted_at + max_wait`); meaningless while empty.
    deadline: f64,
}

/// Runs the service for the duration of `body`: spawns the batcher and
/// one worker per shard of `sessions` (scoped threads — the sessions and
/// their model are borrowed, not `'static`), hands `body` the submit
/// handle, and on return drains the buffers, joins every thread and
/// returns `body`'s result together with the final [`ServiceStats`].
///
/// Batching, sharding and eviction never change per-query results — see
/// the crate-level determinism contract.
pub fn serve<S, M, R>(
    sessions: &ShardedSession<'_, S, M>,
    config: ServiceConfig,
    body: impl FnOnce(&ServiceHandle<'_, S, M>) -> R,
) -> (R, ServiceStats)
where
    S: MpqSpace + Sync,
    S::Cost: Send + Sync,
    S::Region: Send + Sync,
    M: ParametricCostModel + ?Sized,
{
    let shards = sessions.num_shards();
    let policy = config.policy;
    assert!(policy.max_batch >= 1, "max_batch must be at least 1");
    let clock: ServiceClock = config.clock.unwrap_or_else(|| {
        let start = Instant::now();
        Arc::new(move || start.elapsed().as_secs_f64())
    });
    let stats = Arc::new(StatsShared::new(shards));

    let out = std::thread::scope(|scope| {
        let (sub_tx, sub_rx) = mpsc::channel::<Pending<S>>();
        let mut batch_txs = Vec::with_capacity(shards);
        // Shard workers: one thread per shard, each draining its own
        // batch channel through its own session. One batch at a time per
        // shard keeps the per-batch LP delta exact.
        for shard in 0..shards {
            let (batch_tx, batch_rx) = mpsc::channel::<ShardBatch<S>>();
            batch_txs.push(batch_tx);
            let stats = Arc::clone(&stats);
            let clock = Arc::clone(&clock);
            let session = sessions.shard(shard);
            scope.spawn(move || {
                for batch in batch_rx {
                    let queries: Vec<Query> =
                        batch.requests.iter().map(|p| p.query.clone()).collect();
                    let (solutions, lps) = session.optimize_batch_counted(&queries);
                    stats.lps_solved.fetch_add(lps, Ordering::Relaxed);
                    stats.shard_batches[shard].fetch_add(1, Ordering::Relaxed);
                    stats.shard_queries[shard]
                        .fetch_add(batch.requests.len() as u64, Ordering::Relaxed);
                    let batch_size = batch.requests.len();
                    let now = clock();
                    for (pending, solution) in batch.requests.into_iter().zip(solutions) {
                        let latency = now - pending.submitted_at;
                        stats
                            .latencies
                            .lock()
                            .expect("latency log poisoned")
                            .push(latency);
                        stats.completed.fetch_add(1, Ordering::Relaxed);
                        // A dropped ticket is fine — the client walked
                        // away from the response.
                        let _ = pending.reply.send(QueryResponse {
                            solution,
                            shard,
                            batch_seq: batch.seq,
                            batch_size,
                            trigger: batch.trigger,
                            latency,
                        });
                    }
                }
            });
        }

        // The batcher: accumulates per-shard buffers and dispatches on
        // size, deadline, or drain.
        {
            let stats = Arc::clone(&stats);
            let clock = Arc::clone(&clock);
            scope.spawn(move || {
                let max_wait_secs = policy.max_wait.as_secs_f64();
                let mut buffers: Vec<ShardBuffer<S>> = (0..shards)
                    .map(|_| ShardBuffer {
                        requests: Vec::new(),
                        deadline: 0.0,
                    })
                    .collect();
                let mut seq = 0u64;
                let mut flush =
                    |buffers: &mut Vec<ShardBuffer<S>>, shard: usize, trigger: BatchTrigger| {
                        let requests = std::mem::take(&mut buffers[shard].requests);
                        if requests.is_empty() {
                            return;
                        }
                        stats
                            .queue_depth
                            .fetch_sub(requests.len() as u64, Ordering::Relaxed);
                        stats.batches.fetch_add(1, Ordering::Relaxed);
                        match trigger {
                            BatchTrigger::Size => &stats.size_triggered,
                            BatchTrigger::Deadline => &stats.deadline_triggered,
                            BatchTrigger::Drain => &stats.drain_triggered,
                        }
                        .fetch_add(1, Ordering::Relaxed);
                        batch_txs[shard]
                            .send(ShardBatch {
                                seq,
                                trigger,
                                requests,
                            })
                            .expect("shard worker terminated early");
                        seq += 1;
                    };
                loop {
                    // Blocking recv while idle; with buffered requests,
                    // sleep only until the earliest buffered deadline
                    // (floored at 1 ms scheduling granularity, capped at
                    // `max_wait`), so wall-clock deadlines overshoot by
                    // at most that floor plus batch processing — even
                    // while other shards keep receiving traffic, every
                    // iteration recomputes the remaining time. Virtual
                    // clocks advance only at submissions, so for them
                    // the timeout wake re-reads an unchanged `now` — its
                    // sweep only ever fires on an *empty* channel (all
                    // sent arrivals admitted), which makes it equivalent
                    // to the next arrival's sweep: batch contents stay a
                    // pure function of the submission sequence.
                    let earliest = buffers
                        .iter()
                        .filter(|b| !b.requests.is_empty())
                        .map(|b| b.deadline)
                        .fold(f64::INFINITY, f64::min);
                    let received = if earliest.is_finite() {
                        let remaining = Duration::from_secs_f64((earliest - clock()).max(0.0));
                        let timeout = remaining.min(policy.max_wait).max(Duration::from_millis(1));
                        match sub_rx.recv_timeout(timeout) {
                            Ok(p) => Some(p),
                            Err(mpsc::RecvTimeoutError::Timeout) => None,
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    } else {
                        match sub_rx.recv() {
                            Ok(p) => Some(p),
                            Err(_) => break,
                        }
                    };
                    match received {
                        Some(pending) => {
                            // Deadline sweep *before* admitting the new
                            // arrival, keyed on its submit timestamp: an
                            // expired buffer dispatches without the new
                            // request, exactly as if the timeout wake had
                            // won the race — batch contents are a pure
                            // function of the submission sequence.
                            let t = pending.submitted_at;
                            for shard in 0..shards {
                                if !buffers[shard].requests.is_empty()
                                    && buffers[shard].deadline <= t
                                {
                                    flush(&mut buffers, shard, BatchTrigger::Deadline);
                                }
                            }
                            let shard = sessions.shard_of(&pending.query);
                            if buffers[shard].requests.is_empty() {
                                buffers[shard].deadline = pending.submitted_at + max_wait_secs;
                            }
                            buffers[shard].requests.push(pending);
                            let depth = stats.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                            stats.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
                            if buffers[shard].requests.len() >= policy.max_batch {
                                flush(&mut buffers, shard, BatchTrigger::Size);
                            }
                        }
                        None => {
                            // Timeout wake: flush whatever expired. The
                            // channel was empty for the whole timeout, so
                            // no admitted-but-unswept arrival exists and
                            // the sweep matches what the next arrival
                            // would do.
                            let now = clock();
                            for shard in 0..shards {
                                if !buffers[shard].requests.is_empty()
                                    && buffers[shard].deadline <= now
                                {
                                    flush(&mut buffers, shard, BatchTrigger::Deadline);
                                }
                            }
                        }
                    }
                }
                // Shutdown: drain whatever is left, in shard order.
                for shard in 0..shards {
                    flush(&mut buffers, shard, BatchTrigger::Drain);
                }
                // `batch_txs` drop here, terminating the shard workers.
            });
        }

        let handle = ServiceHandle {
            tx: Mutex::new(sub_tx),
            clock: Arc::clone(&clock),
            stats: Arc::clone(&stats),
            sessions,
        };
        let out = body(&handle);
        // Dropping the handle closes the submit channel: the batcher
        // drains and exits, the workers follow, and the scope joins them.
        drop(handle);
        out
    });
    let final_stats = stats.snapshot(sessions.cache_stats_per_shard());
    (out, final_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_catalog::generator::{generate_workload, GeneratorConfig, WorkloadConfig};
    use mpq_catalog::graph::Topology;
    use mpq_cloud::model::CloudCostModel;
    use mpq_core::grid_space::GridSpace;
    use mpq_core::session::{OptimizerSession, SessionConfig};
    use mpq_core::OptimizerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(n: usize, batch: usize, overlap: f64, seed: u64) -> Vec<Query> {
        let cfg = WorkloadConfig::uniform(
            GeneratorConfig::paper(n, Topology::Chain, 1),
            batch,
            overlap,
        );
        generate_workload(&cfg, &mut StdRng::seed_from_u64(seed)).queries
    }

    fn sessions<'m>(
        model: &'m CloudCostModel,
        shards: usize,
        capacity: Option<usize>,
    ) -> ShardedSession<'m, GridSpace, CloudCostModel> {
        let opt = OptimizerConfig::default_for(1);
        let mut cfg = SessionConfig::new(opt.clone());
        cfg.cache_capacity = capacity;
        ShardedSession::build(shards, model, &cfg, move || {
            GridSpace::for_unit_box(1, &opt, 2).unwrap()
        })
    }

    /// Service responses equal plain one-by-one session runs bit for bit.
    #[test]
    fn service_matches_plain_session() {
        let model = CloudCostModel::default();
        let queries = workload(3, 5, 0.5, 11);
        let opt = OptimizerConfig::default_for(1);
        let reference: Vec<_> = queries
            .iter()
            .map(|q| {
                let space = GridSpace::for_unit_box(1, &opt, 2).unwrap();
                let session = OptimizerSession::new(space, &model, opt.clone());
                session.optimize(q)
            })
            .collect();
        let shard_sessions = sessions(&model, 2, None);
        let config = ServiceConfig::new(BatchPolicy::new(2, Duration::from_millis(1)));
        let (responses, stats) = serve(&shard_sessions, config, |handle| {
            let tickets: Vec<_> = queries.iter().map(|q| handle.submit(q.clone())).collect();
            tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
        });
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(
            stats.size_triggered + stats.deadline_triggered + stats.drain_triggered,
            stats.batches,
            "every batch carries exactly one trigger"
        );
        for (resp, reference) in responses.iter().zip(&reference) {
            assert_eq!(
                resp.solution.stats.plans_created,
                reference.stats.plans_created
            );
            assert_eq!(
                resp.solution.stats.plans_pruned,
                reference.stats.plans_pruned
            );
            assert_eq!(resp.solution.plans.len(), reference.plans.len());
            assert!(resp.latency >= 0.0);
            assert!(resp.shard < 2);
        }
    }

    /// With a virtual clock frozen at 0, only the size trigger (and the
    /// final drain) can fire, and batch sizes obey `max_batch`.
    #[test]
    fn size_trigger_bounds_batches() {
        let model = CloudCostModel::default();
        let queries = workload(3, 7, 1.0, 3);
        let shard_sessions = sessions(&model, 2, None);
        let config = ServiceConfig::new(BatchPolicy::new(3, Duration::from_secs(3600)))
            .with_clock(VirtualClock::new().clock());
        // The 7th request only flushes at drain, so tickets are waited
        // *after* `serve` (responses buffer in their channels).
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            queries
                .iter()
                .map(|q| handle.submit(q.clone()))
                .collect::<Vec<_>>()
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(stats.deadline_triggered, 0, "frozen clock, huge deadline");
        // Identical queries share one affinity → one shard takes all 7:
        // two size batches of 3 and a drained single.
        assert_eq!(stats.size_triggered, 2);
        assert_eq!(stats.drain_triggered, 1);
        for resp in &responses {
            assert!(resp.batch_size <= 3);
            assert_eq!(resp.latency, 0.0, "virtual clock never advanced");
        }
        let busy: Vec<&ShardStats> = stats.per_shard.iter().filter(|s| s.queries > 0).collect();
        assert_eq!(busy.len(), 1, "one affinity → one shard");
        assert_eq!(busy[0].queries, 7);
        assert!(busy[0].cache.hits > 0, "identical queries share lifts");
    }

    /// Advancing the virtual clock past the deadline dispatches a partial
    /// batch on the next arrival.
    #[test]
    fn deadline_trigger_fires_on_virtual_clock() {
        let model = CloudCostModel::default();
        let queries = workload(3, 3, 1.0, 5);
        let shard_sessions = sessions(&model, 1, None);
        let vclock = VirtualClock::new();
        let config = ServiceConfig::new(BatchPolicy::new(100, Duration::from_micros(50)))
            .with_clock(vclock.clock());
        let (tickets, stats) = serve(&shard_sessions, config, |handle| {
            let t0 = handle.submit(queries[0].clone());
            // Advance the clock past the 50µs deadline; the next arrival
            // sweeps the expired buffer before joining it.
            vclock.advance_to_micros(100);
            let t1 = handle.submit(queries[1].clone());
            let t2 = handle.submit(queries[2].clone());
            // t0 completes in-flight; t1/t2 flush at drain, so all waits
            // happen after `serve`.
            vec![t0, t1, t2]
        });
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(responses[0].trigger, BatchTrigger::Deadline);
        assert_eq!(responses[0].batch_size, 1);
        assert!((responses[0].latency - 1e-4).abs() < 1e-9);
        assert_eq!(responses[1].trigger, BatchTrigger::Drain);
        assert_eq!(responses[2].trigger, BatchTrigger::Drain);
        assert_eq!(stats.deadline_triggered, 1);
        assert_eq!(stats.drain_triggered, 1);
        assert_eq!(stats.queue_depth, 0, "nothing left buffered");
        assert_eq!(stats.queue_depth_peak, 2);
    }

    /// Tiny cache capacities evict but never change results.
    #[test]
    fn tiny_capacity_identical_results() {
        let model = CloudCostModel::default();
        let queries = workload(3, 6, 1.0, 9);
        let run = |capacity: Option<usize>| {
            let shard_sessions = sessions(&model, 2, capacity);
            let config = ServiceConfig::new(BatchPolicy::new(2, Duration::from_millis(1)));
            serve(&shard_sessions, config, |handle| {
                let tickets: Vec<_> = queries.iter().map(|q| handle.submit(q.clone())).collect();
                tickets
                    .into_iter()
                    .map(|t| {
                        let r = t.wait();
                        (r.solution.stats.plans_created, r.solution.plans.len())
                    })
                    .collect::<Vec<_>>()
            })
        };
        let (unbounded, _) = run(None);
        let (bounded, stats) = run(Some(1));
        assert_eq!(unbounded, bounded);
        let evictions: u64 = stats.per_shard.iter().map(|s| s.cache.evictions).sum();
        assert!(evictions > 0, "capacity 1 must evict on 6 shared queries");
    }

    /// Mid-run stats snapshots are coherent and percentiles ordered.
    #[test]
    fn stats_snapshot_mid_run() {
        let model = CloudCostModel::default();
        let queries = workload(2, 4, 0.0, 7);
        let shard_sessions = sessions(&model, 4, None);
        let config = ServiceConfig::new(BatchPolicy::new(1, Duration::from_millis(1)));
        let ((), stats) = serve(&shard_sessions, config, |handle| {
            let tickets: Vec<_> = queries.iter().map(|q| handle.submit(q.clone())).collect();
            for t in tickets {
                t.wait();
            }
            let mid = handle.stats();
            assert_eq!(mid.completed, 4);
            assert!(mid.latency_p50 <= mid.latency_p95);
            assert!(mid.lps_solved > 0);
        });
        assert_eq!(stats.batches, 4, "max_batch 1 → one batch per query");
        assert_eq!(stats.size_triggered, 4);
        let shard_queries: u64 = stats.per_shard.iter().map(|s| s.queries).sum();
        assert_eq!(shard_queries, 4);
    }
}
