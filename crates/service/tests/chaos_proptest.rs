//! Property-based fault-injection ("chaos") tests for the optimizer
//! service.
//!
//! The robustness contract (crate docs of `mpq_service`): under a
//! seeded, deterministic fault plan that makes some queries panic inside
//! the optimizer,
//!
//! 1. every submitted query resolves to **exactly one** [`QueryOutcome`]
//!    — poisoned queries to `Panicked`, healthy ones to `Ok`;
//! 2. the service neither hangs nor loses a worker: `serve` drains and
//!    returns, and every buffered ticket is answered;
//! 3. every *healthy* query's plans/counters/frontiers stay
//!    **bit-identical** to a plain one-by-one session — the PR-5
//!    determinism bar, now under fire — at any shard count;
//! 4. the counters conserve: `submitted == completed + rejected +
//!    timed_out + quarantined` (with `rejected == timed_out == 0` here —
//!    no admission control or deadlines in these cases), and each
//!    quarantined poison costs at least one worker restart.
//!
//! Half the cases additionally run under
//! `ApproxPolicy::deadline_only(0.1)`: ε-served completions still count
//! toward the conservation identity (`approx_served ≤ completed`),
//! quarantine still catches every poison, and a healthy response stamped
//! `served_epsilon` must carry the policy's ε — bisection replays of a
//! downgraded batch preserve the batch ε — with a frontier no larger
//! than the exact reference and every exact cost vector (1+ε)-dominated.
//!
//! Faults here are always-poison (`FaultConfig::poison_only`): which
//! *attempt* of a transient fault panics depends on how bisection
//! regroups retries, so transient semantics are covered by unit tests,
//! while this suite holds the grouping-independent invariants across
//! random traces × policies × shard counts {1, 2, 4}.
//!
//! [`QueryOutcome`]: mpq_service::QueryOutcome

use mpq_catalog::fault::{silence_injected_panics, FaultConfig, FaultPlan};
use mpq_catalog::generator::{generate_trace, GeneratorConfig, TraceConfig, WorkloadConfig};
use mpq_catalog::graph::Topology;
use mpq_cloud::model::CloudCostModel;
use mpq_core::grid_space::GridSpace;
use mpq_core::rrpa::{optimize, MpqSolution};
use mpq_core::session::{SessionConfig, ShardedSession};
use mpq_core::space::MpqSpace;
use mpq_core::OptimizerConfig;
use mpq_service::{serve, ApproxPolicy, BatchPolicy, OutcomeKind, ServiceConfig, VirtualClock};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic probe points for frontier comparison.
fn probes() -> Vec<Vec<f64>> {
    [0.0, 0.15, 0.5, 0.85, 1.0]
        .iter()
        .map(|&v| vec![v])
        .collect()
}

/// Per-query facts that must match bit for bit between the service and
/// the sequential reference.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    plans_created: u64,
    plans_pruned: u64,
    final_plans: usize,
    frontiers: Vec<Vec<(mpq_core::plan::PlanId, Vec<f64>)>>,
}

fn fingerprint<S: MpqSpace>(space: &S, sol: &MpqSolution<S>) -> Fingerprint {
    Fingerprint {
        plans_created: sol.stats.plans_created,
        plans_pruned: sol.stats.plans_pruned,
        final_plans: sol.stats.final_plan_count,
        frontiers: probes().iter().map(|x| sol.frontier_at(space, x)).collect(),
    }
}

/// Cover check: every exact-frontier cost vector is (1+ε)-dominated by
/// some approximate plan at the same probe point (tolerance absorbs LP
/// round-off).
fn covers(exact: &[(mpq_core::plan::PlanId, Vec<f64>)], approx: &[Vec<f64>], eps: f64) -> bool {
    exact.iter().all(|(_, target)| {
        approx.iter().any(|candidate| {
            candidate
                .iter()
                .zip(target)
                .all(|(c, t)| *c <= (1.0 + eps) * *t + 1e-9 + 1e-9 * t.abs())
        })
    })
}

proptest! {
    // Each case runs one sequential reference plus 3 shard counts under
    // a seeded fault plan; sizes stay small so the hundreds of injected
    // panics (caught and quarantined) keep the suite in seconds.
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn healthy_queries_survive_poison_batchmates(
        num_tables in 2usize..=3,
        star in 0usize..=1,
        trace_len in 4usize..=8,
        overlap_idx in 0usize..=2,
        poison_rate_idx in 0usize..=1,
        max_batch in 1usize..=4,
        max_wait_us in prop_oneof![Just(0u64), Just(40), Just(1_000_000)],
        mean_gap_us in prop_oneof![Just(0u64), Just(25), Just(100)],
        approx in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1000,
    ) {
        silence_injected_panics();
        let overlap = [0.0, 0.5, 1.0][overlap_idx];
        let poison_rate = [0.25, 0.6][poison_rate_idx];
        let topology = if star == 1 { Topology::Star } else { Topology::Chain };
        let trace_cfg = TraceConfig {
            workload: WorkloadConfig::uniform(
                GeneratorConfig::paper(num_tables, topology, 1),
                trace_len,
                overlap,
            ),
            mean_gap: mean_gap_us as f64 * 1e-6,
        };
        let trace = generate_trace(&trace_cfg, &mut StdRng::seed_from_u64(seed));
        // The fault plan draws from its own seeded stream, decoupled
        // from the trace's.
        let plan = Arc::new(FaultPlan::generate(
            &trace,
            &FaultConfig::poison_only(poison_rate),
            &mut StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        ));
        let poisoned: Vec<bool> =
            trace.queries.iter().map(|q| plan.is_poisoned(q)).collect();
        let n_poisoned = poisoned.iter().filter(|&&p| p).count();
        let model = CloudCostModel::default();
        let opt = OptimizerConfig {
            grid_resolution: 4,
            threads: Some(1),
            ..OptimizerConfig::default_for(1)
        };

        // Sequential fault-free reference: every query alone on a fresh
        // space (what each healthy query must reproduce bit for bit).
        let reference: Vec<Fingerprint> = trace
            .queries
            .iter()
            .map(|q| {
                let space = GridSpace::for_unit_box(1, &opt, 2).expect("grid space");
                let sol = optimize(q, &model, &space, &opt);
                fingerprint(&space, &sol)
            })
            .collect();

        for shards in [1usize, 2, 4] {
            let mut session_cfg = SessionConfig::new(opt.clone());
            session_cfg.fault_hook = Some(plan.hook(|_| {}));
            let sessions = ShardedSession::build(shards, &model, &session_cfg, || {
                GridSpace::for_unit_box(1, &opt, 2).expect("grid space")
            });
            let vclock = VirtualClock::new();
            let epsilon = approx.then_some(0.1);
            let mut config = ServiceConfig::new(BatchPolicy::new(
                max_batch,
                Duration::from_micros(max_wait_us),
            ))
            .with_clock(vclock.clock());
            if let Some(eps) = epsilon {
                config = config.with_approx(ApproxPolicy::deadline_only(eps));
            }
            // `serve` returning at all is invariant 2: the drain flush
            // only runs after every worker survived its batches, and
            // the scope join would propagate any uncaught worker panic.
            let (tickets, stats) = serve(&sessions, config, |handle| {
                trace
                    .queries
                    .iter()
                    .zip(&trace.arrivals)
                    .map(|(q, &at)| {
                        vclock.advance_to_secs(at);
                        handle.submit(q.clone())
                    })
                    .collect::<Vec<_>>()
            });
            prop_assert_eq!(stats.submitted, trace.len() as u64);
            prop_assert!(
                stats.conserves(),
                "conservation: every query resolves exactly once"
            );
            prop_assert_eq!(
                (
                    stats.unavailable,
                    stats.retries,
                    stats.reconnects,
                    stats.dropped
                ),
                (0u64, 0u64, 0u64, 0u64),
                "in-process serving has no wire counters"
            );
            prop_assert_eq!(stats.quarantined, n_poisoned as u64);
            prop_assert_eq!(stats.rejected, 0u64);
            prop_assert_eq!(stats.timed_out, 0u64);
            prop_assert_eq!(stats.queue_depth, 0u64, "nothing left buffered");
            prop_assert!(
                stats.approx_served <= stats.completed,
                "ε-served responses are a subset of completions"
            );
            if epsilon.is_none() {
                prop_assert_eq!(
                    (stats.approx_served, stats.approx_batches),
                    (0u64, 0u64),
                    "no approximation policy, no ε-served responses"
                );
            }
            let restarts: u64 = stats.per_shard.iter().map(|s| s.restarts).sum();
            prop_assert!(
                restarts >= stats.quarantined,
                "each quarantined poison costs at least its leaf restart"
            );
            if n_poisoned == 0 {
                prop_assert_eq!(restarts, 0u64, "no faults, no restarts");
            }
            let mut eps_served = 0u64;
            for (i, ticket) in tickets.into_iter().enumerate() {
                // `wait` resolves exactly once per ticket (invariant 1);
                // a hang here would trip proptest's timeout.
                let resp = ticket.wait();
                if poisoned[i] {
                    prop_assert_eq!(
                        resp.kind(),
                        OutcomeKind::Panicked,
                        "poisoned query {} must be quarantined",
                        i
                    );
                    continue;
                }
                let route = resp.route.expect("healthy responses carry a route");
                prop_assert!(route.shard < shards);
                let served_epsilon = resp.served_epsilon;
                let solution = resp.outcome.ok().expect("healthy query completes");
                let space = sessions.shard(route.shard).space();
                if let Some(e) = served_epsilon {
                    // A deadline-downgraded batch — bisection replays of
                    // its poisoned members must preserve the batch ε.
                    eps_served += 1;
                    prop_assert_eq!(
                        Some(e),
                        epsilon,
                        "ε-served response must carry the policy's ε"
                    );
                    prop_assert!(
                        solution.stats.final_plan_count <= reference[i].final_plans,
                        "ε-discards grew the frontier of healthy query {}",
                        i
                    );
                    for (pi, x) in probes().iter().enumerate() {
                        let approx_costs: Vec<Vec<f64>> = solution
                            .frontier_at(space, x)
                            .into_iter()
                            .map(|(_, c)| c)
                            .collect();
                        prop_assert!(
                            covers(&reference[i].frontiers[pi], &approx_costs, e),
                            "ε={} cover violated for healthy query {} at {:?}",
                            e,
                            i,
                            x
                        );
                    }
                    continue;
                }
                let got = fingerprint(space, &solution);
                prop_assert_eq!(
                    &got,
                    &reference[i],
                    "healthy query {} diverged from one-by-one under faults \
                     ({} shards, rate {}, overlap {})",
                    i,
                    shards,
                    poison_rate,
                    overlap
                );
            }
            prop_assert_eq!(
                eps_served,
                stats.approx_served,
                "stamped ε-served responses must match the service counter"
            );
        }
    }
}
