//! Property-based determinism tests for the optimizer service.
//!
//! The service contract (crate docs of `mpq_service`): for a fixed trace,
//! per-query plans, counters and frontiers are **bit-identical** to
//! optimizing the same queries one by one through a plain session —
//! independent of the batch policy (size/deadline triggers), the shard
//! count, the cost-lifting cache capacity (unbounded or tiny, i.e.
//! evicting constantly), and the shared-subplan cache capacity
//! (disabled, unbounded, evicting, or pass-through). Random traces ×
//! policies × shard counts {1, 2, 4} × capacities {∞, 1, 0} for both
//! caches are exercised here; a tiny capacity must also *terminate*
//! (eviction cannot livelock a batch) with the identical plans.

use mpq_catalog::generator::{generate_trace, GeneratorConfig, TraceConfig, WorkloadConfig};
use mpq_catalog::graph::Topology;
use mpq_cloud::model::CloudCostModel;
use mpq_core::grid_space::GridSpace;
use mpq_core::rrpa::{optimize, MpqSolution};
use mpq_core::session::{SessionConfig, ShardedSession};
use mpq_core::space::MpqSpace;
use mpq_core::OptimizerConfig;
use mpq_service::{serve, BatchPolicy, ServiceConfig, VirtualClock};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Deterministic probe points for frontier comparison.
fn probes() -> Vec<Vec<f64>> {
    [0.0, 0.15, 0.5, 0.85, 1.0]
        .iter()
        .map(|&v| vec![v])
        .collect()
}

/// Per-query facts that must match bit for bit between the service and
/// the sequential reference.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    plans_created: u64,
    plans_pruned: u64,
    final_plans: usize,
    frontiers: Vec<Vec<(mpq_core::plan::PlanId, Vec<f64>)>>,
}

fn fingerprint<S: MpqSpace>(space: &S, sol: &MpqSolution<S>) -> Fingerprint {
    Fingerprint {
        plans_created: sol.stats.plans_created,
        plans_pruned: sol.stats.plans_pruned,
        final_plans: sol.stats.final_plan_count,
        frontiers: probes().iter().map(|x| sol.frontier_at(space, x)).collect(),
    }
}

proptest! {
    // Each case runs one sequential reference plus 3 shard counts × the
    // capacity set through the full service stack; sizes stay small so
    // the suite remains seconds, not minutes.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn service_equals_one_by_one_session(
        num_tables in 2usize..=3,
        star in 0usize..=1,
        trace_len in 3usize..=6,
        overlap_idx in 0usize..=2,
        max_batch in 1usize..=4,
        max_wait_us in prop_oneof![Just(0u64), Just(40), Just(1_000_000)],
        mean_gap_us in prop_oneof![Just(0u64), Just(25), Just(100)],
        seed in 0u64..1000,
    ) {
        let overlap = [0.0, 0.5, 1.0][overlap_idx];
        let topology = if star == 1 { Topology::Star } else { Topology::Chain };
        let trace_cfg = TraceConfig {
            workload: WorkloadConfig::uniform(
                GeneratorConfig::paper(num_tables, topology, 1),
                trace_len,
                overlap,
            ),
            mean_gap: mean_gap_us as f64 * 1e-6,
        };
        let trace = generate_trace(&trace_cfg, &mut StdRng::seed_from_u64(seed));
        let model = CloudCostModel::default();
        let opt = OptimizerConfig {
            grid_resolution: 4,
            threads: Some(1),
            ..OptimizerConfig::default_for(1)
        };

        // Sequential reference: every query alone on a fresh space.
        let reference: Vec<Fingerprint> = trace
            .queries
            .iter()
            .map(|q| {
                let space = GridSpace::for_unit_box(1, &opt, 2).expect("grid space");
                let sol = optimize(q, &model, &space, &opt);
                fingerprint(&space, &sol)
            })
            .collect();

        // The capacity grid pairs the cost-lifting cache with the
        // shared-subplan cache: the lift capacities run with subtree
        // caching explicitly off (isolating the lift layer), and the
        // subtree capacities {∞, small, 0} run on an unbounded lift
        // cache. `None` = that cache disabled.
        let capacity_grid: [(Option<usize>, Option<Option<usize>>); 6] = [
            (None, None),
            (Some(1), None),
            (Some(0), None),
            (None, Some(None)),
            (None, Some(Some(1))),
            (None, Some(Some(0))),
        ];
        for shards in [1usize, 2, 4] {
            for (capacity, subtree) in capacity_grid {
                let mut session_cfg = SessionConfig::new(opt.clone()).without_subtree_cache();
                session_cfg.cache_capacity = capacity;
                if let Some(subtree_capacity) = subtree {
                    session_cfg = session_cfg.with_subtree_cache(subtree_capacity);
                }
                let sessions = ShardedSession::build(shards, &model, &session_cfg, || {
                    GridSpace::for_unit_box(1, &opt, 2).expect("grid space")
                });
                // Virtual clock stepped to each arrival: the batching
                // decisions replay the trace deterministically, and a
                // huge `max_wait` cannot stall the run (tickets are
                // waited after `serve`, when everything has drained).
                let vclock = VirtualClock::new();
                let config = ServiceConfig::new(BatchPolicy::new(
                    max_batch,
                    Duration::from_micros(max_wait_us),
                ))
                .with_clock(vclock.clock());
                let (tickets, stats) = serve(&sessions, config, |handle| {
                    trace
                        .queries
                        .iter()
                        .zip(&trace.arrivals)
                        .map(|(q, &at)| {
                            vclock.advance_to_secs(at);
                            handle.submit(q.clone())
                        })
                        .collect::<Vec<_>>()
                });
                prop_assert_eq!(stats.completed, trace.len() as u64, "all answered");
                prop_assert!(stats.conserves(), "conservation identity after shutdown");
                prop_assert_eq!(
                    (
                        stats.unavailable,
                        stats.retries,
                        stats.reconnects,
                        stats.dropped
                    ),
                    (0u64, 0u64, 0u64, 0u64),
                    "in-process serving has no wire counters"
                );
                prop_assert_eq!(
                    stats.batches,
                    stats.size_triggered + stats.deadline_triggered + stats.drain_triggered
                );
                let evictions: u64 =
                    stats.per_shard.iter().map(|s| s.cache.evictions).sum();
                if capacity == Some(1) && overlap == 0.0 && trace_len > 2 {
                    // Independent queries produce many distinct shapes: a
                    // one-entry cache must evict (and still terminate
                    // with identical plans, asserted below).
                    prop_assert!(evictions > 0, "capacity 1 under distinct shapes");
                }
                let subtree_hits: u64 =
                    stats.per_shard.iter().map(|s| s.subtree.hits).sum();
                match subtree {
                    // Subtree caching off: the stats block stays all-zero.
                    None => prop_assert_eq!(subtree_hits, 0, "subtree cache disabled"),
                    // Duplicates share a shard (affinity hashes the scan
                    // shapes), so a fully overlapping trace must reuse
                    // subtrees through the unbounded cache.
                    Some(None) if overlap == 1.0 && trace_len > 1 => {
                        prop_assert!(subtree_hits > 0, "full overlap must hit subtrees");
                    }
                    Some(_) => {}
                }
                for (i, ticket) in tickets.into_iter().enumerate() {
                    let resp = ticket.wait();
                    let route = resp.route.expect("completed response carries a route");
                    prop_assert!(route.shard < shards);
                    let solution = resp.outcome.ok().expect("fault-free run completes");
                    let got = fingerprint(sessions.shard(route.shard).space(), &solution);
                    prop_assert_eq!(
                        &got,
                        &reference[i],
                        "service diverged from one-by-one (query {}, {} shards, capacity {:?}, subtree {:?})",
                        i,
                        shards,
                        capacity,
                        subtree
                    );
                }
            }
        }
    }
}
