//! Serves one simulated request trace through an [`Obs`] handle and
//! prints what an operator would scrape: the span tree, the Prometheus
//! text exposition, and the JSONL snapshot.
//!
//! The clock is a deterministic ticker, so this example's output is
//! byte-identical on every run — the same property the replay proptests
//! pin for the real optimizer under a virtual clock.
//!
//! ```bash
//! cargo run --release -p mpq-obs --example exposition
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpq_obs::{parse_exposition, Obs};

fn main() {
    // A virtual clock: every read advances 250 µs, as if each step of
    // the request took exactly that long.
    let ticks = AtomicU64::new(0);
    let obs = Obs::with_clock(
        true,
        Arc::new(move || ticks.fetch_add(250, Ordering::Relaxed)),
    );

    let registry = obs.registry().expect("enabled handle has a registry");
    let submitted = registry.counter("service_submitted");
    let completed = registry.counter("service_completed");
    let latency = registry.histogram("service_latency_seconds");
    let cache = registry.cache("lift_cache");

    // One request: submit -> batch -> per-level DP work -> respond.
    for (trace_id, levels) in [(1u64, 3u64), (2, 4)] {
        submitted.inc();
        let started = obs.now_us();
        let mut request = obs.span("request");
        request.record("trace_id", trace_id);
        {
            let mut batch = obs.span("batch_dispatch");
            batch.record("shard", trace_id % 2);
            for level in 1..=levels {
                let mut dp = obs.span("dp_level");
                dp.record("level", level);
                dp.record("plans_delta", 10 * level);
                // The cache warms as levels repeat across requests.
                if trace_id > 1 {
                    cache.hit();
                } else {
                    cache.miss();
                }
            }
        }
        drop(request);
        completed.inc();
        latency.record_secs((obs.now_us() - started) as f64 * 1e-6);
    }

    println!("== span tree ==");
    print!("{}", obs.span_tree());
    println!("\n== exposition ==");
    let text = registry.expose();
    print!("{text}");
    let samples = parse_exposition(&text).expect("own exposition parses");
    println!("\n== jsonl snapshot ({} samples parsed) ==", samples.len());
    print!("{}", registry.snapshot_jsonl());
}
