//! Deterministic observability for the MPQ optimizer stack.
//!
//! Everything in this crate obeys the same determinism contract the
//! optimizer itself lives by: given the same trace and the same clock,
//! every counter value, histogram bucket, span id and exposition byte is
//! identical across runs. Under a virtual clock the whole observability
//! output is a *pure function of the trace* — which makes it
//! proptest-pinnable, replayable, and mergeable across shards.
//!
//! Three layers:
//!
//! - **Metrics registry** ([`Registry`]): named atomic [`Counter`]s,
//!   [`Gauge`]s, log-bucketed [`Histogram`]s and [`CacheCounters`],
//!   hand-rolled with no external dependencies. Reads are lock-light
//!   (one short registry lock to look a handle up, atomics thereafter);
//!   the hot path touches only `Relaxed` atomics. Exposition comes in
//!   two formats: Prometheus-style text ([`Registry::expose`]) and a
//!   JSONL snapshot ([`Registry::snapshot_jsonl`]).
//! - **Structured spans** ([`Obs::span`]): a guard API over a
//!   thread-local span stack. Opening a span inside another span links
//!   parent → child; dropping the guard stamps the end time and files
//!   the [`SpanRecord`]. [`Obs::span_tree`] renders the finished tree.
//! - **Gating** ([`Obs::off`] / [`ObsConfig`]): a disabled handle is a
//!   no-op on the hot path — `span()` returns an inert guard, no
//!   allocation, no clock read, no lock. The optimizer layers read the
//!   ambient handle via [`current`] (installed with [`install`], the
//!   same thread-local-guard idiom `mpq_lp::attribute_solves` uses), so
//!   code that never installs one pays nothing.
//!
//! Histogram buckets are logarithmic with 8 sub-buckets per octave
//! (values below 64 are exact), so any recorded value is within 12.5 %
//! of its bucket's reported upper bound while the whole histogram is a
//! fixed 528 counters — bounded memory regardless of stream length, and
//! two histograms merge by bucket-wise addition.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Recovers a poisoned lock: every structure here is a plain bag of
/// atomics / POD records, valid after any panic mid-update.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// A monotonically increasing atomic counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value atomic gauge. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Cache counters
// ---------------------------------------------------------------------------

/// The one shape every cache in the workspace reports through: hits,
/// misses, evictions. Callers hold an `Arc<CacheCounters>` inside the
/// cache and register the same `Arc` in a [`Registry`], so the cache's
/// own accessors and the scraped metrics can never disagree.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    /// Fresh counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one eviction.
    pub fn evict(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits over lookups, zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------------

/// Values below this are counted exactly, one bucket per value.
const LINEAR_MAX: u64 = 64;
/// Sub-bucket resolution: 2³ = 8 sub-buckets per power of two.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// log₂([`LINEAR_MAX`]) — the first logarithmic octave.
const FIRST_OCTAVE: u32 = 6;
/// 64 exact buckets + 58 octaves × 8 sub-buckets.
const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_OCTAVE as usize) * SUB;

/// Bucket for a value: exact below [`LINEAR_MAX`], then the octave
/// (position of the leading bit) refined by the next [`SUB_BITS`] bits.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = ((v >> (octave - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    LINEAR_MAX as usize + (octave - FIRST_OCTAVE) as usize * SUB + sub
}

/// The largest value a bucket admits — the deterministic representative
/// reported by quantiles (an upper bound, within 12.5 % of any member).
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let rel = idx - LINEAR_MAX as usize;
    let octave = FIRST_OCTAVE + (rel / SUB) as u32;
    let sub = (rel % SUB) as u64;
    let lower = (1u64 << octave) | (sub << (octave - SUB_BITS));
    lower + ((1u64 << (octave - SUB_BITS)) - 1)
}

/// A fixed-size log-bucketed histogram of `u64` values (latencies are
/// recorded in nanoseconds via [`Histogram::record_secs`]).
///
/// Memory is bounded at `NUM_BUCKETS` atomic cells no matter how many
/// values stream in — this is what replaced the service's 64 Ki latency
/// ring — and two histograms merge exactly by bucket-wise addition, so
/// per-shard histograms roll up into a fleet view without resampling.
/// Quantiles are nearest-rank over bucket counts and return the bucket's
/// upper bound: deterministic, and never an underestimate.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in seconds as integer nanoseconds (negative or
    /// non-finite inputs saturate the cast: they land at 0 or the top
    /// bucket rather than corrupting anything).
    pub fn record_secs(&self, secs: f64) {
        self.record((secs * 1e9) as u64);
    }

    /// How many values were recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping at `u64::MAX` — 584 years of
    /// nanoseconds).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile, reported as the bucket upper bound; 0 on an
    /// empty histogram. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// [`Histogram::quantile`] converted back to seconds.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile(q) as f64 * 1e-9
    }

    /// Adds every bucket of `other` into `self` (exact roll-up).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named collection of metrics. Handles are created on first use and
/// shared thereafter (`counter("x")` twice returns the same cell), so
/// call-sites can look handles up once and bump atomics from then on.
///
/// Iteration order everywhere is the `BTreeMap` name order — exposition
/// output is deterministic by construction.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    caches: Mutex<BTreeMap<String, Arc<CacheCounters>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        lock(&self.counters)
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        lock(&self.gauges)
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(lock(&self.histograms).entry(name.to_owned()).or_default())
    }

    /// Registers an existing cache's counters under `name` (the cache
    /// keeps its `Arc`; the registry scrapes the same cells).
    pub fn register_cache(&self, name: &str, counters: Arc<CacheCounters>) {
        lock(&self.caches).insert(name.to_owned(), counters);
    }

    /// The cache counters named `name`, created at zero on first use.
    pub fn cache(&self, name: &str) -> Arc<CacheCounters> {
        Arc::clone(lock(&self.caches).entry(name.to_owned()).or_default())
    }

    /// Prometheus-style text exposition: `# TYPE` comments, one sample
    /// per line, histograms as summaries with p50/p95/p99 quantile
    /// labels (in seconds), caches as three counters.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, c) in lock(&self.counters).iter() {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {}", c.get());
        }
        for (name, g) in lock(&self.gauges).iter() {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", g.get());
        }
        for (name, c) in lock(&self.caches).iter() {
            let _ = writeln!(out, "# TYPE {name}_hits counter\n{name}_hits {}", c.hits());
            let _ = writeln!(
                out,
                "# TYPE {name}_misses counter\n{name}_misses {}",
                c.misses()
            );
            let _ = writeln!(
                out,
                "# TYPE {name}_evictions counter\n{name}_evictions {}",
                c.evictions()
            );
        }
        for (name, h) in lock(&self.histograms).iter() {
            let _ = writeln!(out, "# TYPE {name} summary");
            for q in [0.5, 0.95, 0.99] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", h.quantile_secs(q));
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum() as f64 * 1e-9);
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// One JSON object per line, every metric kind, name order.
    pub fn snapshot_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, c) in lock(&self.counters).iter() {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{}}}",
                c.get()
            );
        }
        for (name, g) in lock(&self.gauges).iter() {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"name\":\"{name}\",\"value\":{}}}",
                g.get()
            );
        }
        for (name, c) in lock(&self.caches).iter() {
            let _ = writeln!(
                out,
                "{{\"kind\":\"cache\",\"name\":\"{name}\",\"hits\":{},\"misses\":{},\"evictions\":{}}}",
                c.hits(),
                c.misses(),
                c.evictions()
            );
        }
        for (name, h) in lock(&self.histograms).iter() {
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                h.count(),
                h.sum(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99)
            );
        }
        out
    }

    /// A flat `(name, value)` view of every metric, in deterministic
    /// name order — the payload the `Metrics` wire message carries when
    /// a router scrapes a remote shard registry.
    pub fn samples(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (name, c) in lock(&self.counters).iter() {
            out.push((name.clone(), c.get() as f64));
        }
        for (name, g) in lock(&self.gauges).iter() {
            out.push((name.clone(), g.get() as f64));
        }
        for (name, c) in lock(&self.caches).iter() {
            out.push((format!("{name}_hits"), c.hits() as f64));
            out.push((format!("{name}_misses"), c.misses() as f64));
            out.push((format!("{name}_evictions"), c.evictions() as f64));
        }
        for (name, h) in lock(&self.histograms).iter() {
            out.push((format!("{name}_count"), h.count() as f64));
            out.push((format!("{name}_sum_ns"), h.sum() as f64));
            out.push((format!("{name}_p50_ns"), h.quantile(0.5) as f64));
            out.push((format!("{name}_p95_ns"), h.quantile(0.95) as f64));
            out.push((format!("{name}_p99_ns"), h.quantile(0.99) as f64));
        }
        out
    }
}

/// Parses [`Registry::expose`]-style text back into `(name, value)`
/// samples: `#` comment lines are skipped, every other non-empty line
/// must be `name[{labels}] value` with a finite float value. Used by the
/// smoke tests to assert the exposition actually parses.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value: {line:?}", lineno + 1))?;
        if !value.is_finite() {
            return Err(format!("line {}: non-finite value: {line:?}", lineno + 1));
        }
        let base = name.split('{').next().unwrap_or(name);
        if base.is_empty()
            || !base
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name: {line:?}", lineno + 1));
        }
        out.push((name.to_owned(), value));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A finished span: timing plus the `u64` fields recorded while open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Open-order id, unique within one [`Obs`].
    pub id: u32,
    /// The span open on the same thread (and same [`Obs`]) when this one
    /// opened, if any.
    pub parent: Option<u32>,
    /// Static span name.
    pub name: &'static str,
    /// Clock reading at open, microseconds.
    pub start_us: u64,
    /// Clock reading at drop, microseconds.
    pub end_us: u64,
    /// `(key, value)` fields, in record order.
    pub fields: Vec<(&'static str, u64)>,
}

/// The clock an [`Obs`] reads: microseconds from an arbitrary epoch.
/// Under a virtual clock, span timings are a pure function of the trace.
pub type ObsClock = Arc<dyn Fn() -> u64 + Send + Sync>;

#[derive(Debug)]
struct ObsInner {
    clock_is_virtual: bool,
    registry: Registry,
    spans: Mutex<Vec<SpanRecord>>,
    next_span: AtomicU32,
}

// The clock closure lives outside ObsInner's Debug.
struct ObsShared {
    inner: ObsInner,
    clock: ObsClock,
}

/// An observability handle: a [`Registry`] plus a span sink, behind one
/// cheap clone. [`Obs::off`] is the disabled gate — every operation on
/// it is an early-return no-op, pinned by the obs-on/off bit-identity
/// test in `mpq-core`.
#[derive(Clone)]
pub struct Obs {
    shared: Option<Arc<ObsShared>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            None => f.write_str("Obs::off"),
            Some(s) => f
                .debug_struct("Obs")
                .field("virtual", &s.inner.clock_is_virtual)
                .field("spans", &lock(&s.inner.spans).len())
                .finish(),
        }
    }
}

impl Obs {
    /// The disabled handle: no registry, no spans, no clock reads.
    pub fn off() -> Self {
        Self { shared: None }
    }

    /// An enabled handle reading `clock` (microseconds). Pass a closure
    /// over a virtual clock for replayable output, e.g.
    /// `Obs::with_clock(true, Arc::new(move || vclock.now_micros()))`.
    pub fn with_clock(clock_is_virtual: bool, clock: ObsClock) -> Self {
        Self {
            shared: Some(Arc::new(ObsShared {
                inner: ObsInner {
                    clock_is_virtual,
                    registry: Registry::new(),
                    spans: Mutex::new(Vec::new()),
                    next_span: AtomicU32::new(0),
                },
                clock,
            })),
        }
    }

    /// An enabled handle on real monotonic time (anchored at creation).
    pub fn wall() -> Self {
        let start = std::time::Instant::now();
        Self::with_clock(false, Arc::new(move || start.elapsed().as_micros() as u64))
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The registry, if enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.shared.as_deref().map(|s| &s.inner.registry)
    }

    /// The clock reading in microseconds; 0 when disabled.
    pub fn now_us(&self) -> u64 {
        match &self.shared {
            None => 0,
            Some(s) => (s.clock)(),
        }
    }

    /// Opens a span named `name`. The returned guard records fields and,
    /// on drop, stamps the end time and files the [`SpanRecord`]. On a
    /// disabled handle this is an inert guard.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(shared) = &self.shared else {
            return SpanGuard { active: None };
        };
        let id = shared.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let ptr = Arc::as_ptr(shared) as usize;
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.iter().rev().find(|&&(p, _)| p == ptr).map(|&(_, i)| i);
            s.push((ptr, id));
            parent
        });
        SpanGuard {
            active: Some(ActiveSpan {
                shared: Arc::clone(shared),
                id,
                parent,
                name,
                start_us: (shared.clock)(),
                fields: Vec::new(),
            }),
        }
    }

    /// Every finished span so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.shared {
            None => Vec::new(),
            Some(s) => lock(&s.inner.spans).clone(),
        }
    }

    /// Renders the finished spans as an indented tree (children under
    /// parents, both in open order): one line per span with its duration
    /// and fields. Deterministic under a virtual clock.
    pub fn span_tree(&self) -> String {
        let mut spans = self.spans();
        spans.sort_by_key(|s| s.id);
        let mut children: BTreeMap<Option<u32>, Vec<usize>> = BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            children.entry(s.parent).or_default().push(i);
        }
        let mut out = String::new();
        let mut stack: Vec<(usize, usize)> = children
            .get(&None)
            .map(|roots| roots.iter().rev().map(|&i| (i, 0)).collect())
            .unwrap_or_default();
        while let Some((i, depth)) = stack.pop() {
            let s = &spans[i];
            let _ = write!(
                out,
                "{:indent$}{} {}us",
                "",
                s.name,
                s.end_us.saturating_sub(s.start_us),
                indent = depth * 2
            );
            for (k, v) in &s.fields {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
            if let Some(kids) = children.get(&Some(s.id)) {
                stack.extend(kids.iter().rev().map(|&j| (j, depth + 1)));
            }
        }
        out
    }
}

struct ActiveSpan {
    shared: Arc<ObsShared>,
    id: u32,
    parent: Option<u32>,
    name: &'static str,
    start_us: u64,
    fields: Vec<(&'static str, u64)>,
}

/// The guard returned by [`Obs::span`]: dropping it closes the span.
#[must_use = "dropping the guard is what closes the span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attaches a `(key, value)` field to the span. No-op when inert.
    pub fn record(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let end_us = (a.shared.clock)();
        let ptr = Arc::as_ptr(&a.shared) as usize;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&(p, i)| p == ptr && i == a.id) {
                s.remove(pos);
            }
        });
        lock(&a.shared.inner.spans).push(SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            start_us: a.start_us,
            end_us,
            fields: a.fields,
        });
    }
}

// ---------------------------------------------------------------------------
// Ambient handle (thread-local install, the `attribute_solves` idiom)
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Vec<Obs>> = const { RefCell::new(Vec::new()) };
    /// Open spans on this thread as `(obs identity, span id)` — the
    /// parent of a new span is the innermost open span of the same Obs.
    static SPAN_STACK: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
}

/// The innermost [`install`]ed handle on this thread, or [`Obs::off`].
/// The optimizer's hot layers read this once per unit of work; with
/// nothing installed they get the disabled handle and pay nothing more.
pub fn current() -> Obs {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .unwrap_or_else(Obs::off)
}

/// Uninstalls the handle [`install`] pushed, on drop.
#[must_use = "dropping the guard uninstalls the handle"]
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Makes `obs` the ambient handle on this thread until the guard drops.
/// Nests: the innermost install wins, and dropping restores the outer.
pub fn install(obs: &Obs) -> InstallGuard {
    CURRENT.with(|c| c.borrow_mut().push(obs.clone()));
    InstallGuard { _priv: () }
}

// ---------------------------------------------------------------------------
// Config gate
// ---------------------------------------------------------------------------

/// The configuration gate layers carry: [`ObsConfig::Off`] (the default)
/// yields [`Obs::off`] — a hot-path no-op — and [`ObsConfig::On`] wraps
/// a live handle.
#[derive(Clone, Debug, Default)]
pub enum ObsConfig {
    /// Observability disabled; every instrumented site is a no-op.
    #[default]
    Off,
    /// Observability enabled with this handle.
    On(Obs),
}

impl ObsConfig {
    /// The handle this gate resolves to.
    pub fn obs(&self) -> Obs {
        match self {
            ObsConfig::Off => Obs::off(),
            ObsConfig::On(o) => o.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use proptest::prelude::*;

    /// A deterministic test clock: each read advances by `step_us`.
    fn ticking(step_us: u64) -> ObsClock {
        let t = AtomicU64::new(0);
        Arc::new(move || t.fetch_add(step_us, Ordering::Relaxed))
    }

    #[test]
    fn bucket_index_is_monotone_and_upper_bounds_members() {
        let mut prev = 0usize;
        for v in (0u64..4096).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS);
            assert!(idx >= prev, "monotone over the scan");
            prev = idx;
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper bound admits the member: {v} -> {upper}");
            // Within 12.5% above the value (exact below LINEAR_MAX).
            if v >= LINEAR_MAX {
                assert!(upper as f64 <= v as f64 * 1.125, "{v} -> {upper}");
            } else {
                assert_eq!(upper, v);
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_nearest_rank_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram reports 0");
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        // Below LINEAR_MAX buckets are exact.
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(0.01), 1);
        // p99 = value 99 lands in a log bucket; representative is its
        // upper bound, ≥ the value and within 12.5%.
        let p99 = h.quantile(0.99);
        assert!((99..=112).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn histograms_merge_exactly() {
        let a = Histogram::new();
        let b = Histogram::new();
        let c = Histogram::new();
        for v in [3u64, 70, 1_000_000, 5] {
            a.record(v);
            c.record(v);
        }
        for v in [900u64, 12] {
            b.record(v);
            c.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    #[test]
    fn registry_exposition_is_deterministic_and_parses() {
        let r = Registry::new();
        r.counter("zeta_total").add(7);
        r.counter("alpha_total").inc();
        r.gauge("depth").set(3);
        let cache = r.cache("lift_cache");
        cache.hit();
        cache.hit();
        cache.miss();
        r.histogram("latency_seconds").record_secs(0.001);
        let text = r.expose();
        // Counters come first, in name order.
        assert!(text.find("alpha_total 1").unwrap() < text.find("zeta_total 7").unwrap());
        assert!(text.contains("lift_cache_hits 2"));
        assert!(text.contains("# TYPE latency_seconds summary"));
        let samples = parse_exposition(&text).expect("exposition parses");
        assert!(samples.iter().any(|(n, v)| n == "alpha_total" && *v == 1.0));
        assert_eq!(text, r.expose(), "re-exposition is byte-identical");
        // JSONL snapshot carries the same values.
        let jsonl = r.snapshot_jsonl();
        assert!(jsonl.contains(
            "{\"kind\":\"cache\",\"name\":\"lift_cache\",\"hits\":2,\"misses\":1,\"evictions\":0}"
        ));
    }

    #[test]
    fn parse_exposition_rejects_garbage() {
        assert!(parse_exposition("no_value_here\n").is_err());
        assert!(parse_exposition("name nan\n").is_err());
        assert!(parse_exposition("bad name! 1\n").is_err());
        assert_eq!(parse_exposition("# only comments\n\n").unwrap(), vec![]);
    }

    #[test]
    fn spans_nest_on_the_thread_local_stack() {
        let obs = Obs::with_clock(true, ticking(10));
        {
            let mut outer = obs.span("request");
            outer.record("shard", 2);
            {
                let _inner = obs.span("dp_level");
            }
            let _sibling = obs.span("respond");
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 3, "three spans closed");
        let request = spans.iter().find(|s| s.name == "request").unwrap();
        let level = spans.iter().find(|s| s.name == "dp_level").unwrap();
        let respond = spans.iter().find(|s| s.name == "respond").unwrap();
        assert_eq!(request.parent, None);
        assert_eq!(level.parent, Some(request.id));
        assert_eq!(respond.parent, Some(request.id));
        assert_eq!(request.fields, vec![("shard", 2)]);
        let tree = obs.span_tree();
        assert!(tree.starts_with("request "));
        assert!(tree.contains("\n  dp_level "));
        assert!(tree.contains(" shard=2"));
    }

    #[test]
    fn off_handle_records_nothing_and_current_defaults_off() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        {
            let mut g = obs.span("ignored");
            g.record("k", 1);
        }
        assert!(obs.spans().is_empty());
        assert_eq!(obs.span_tree(), "");
        assert_eq!(obs.now_us(), 0);
        assert!(obs.registry().is_none());
        assert!(!current().enabled(), "nothing installed defaults to off");
        let on = Obs::wall();
        {
            let _g = install(&on);
            assert!(current().enabled());
            {
                let off = Obs::off();
                let _g2 = install(&off);
                assert!(!current().enabled(), "innermost install wins");
            }
            assert!(current().enabled(), "outer handle restored");
        }
        assert!(!current().enabled());
        assert!(!ObsConfig::default().obs().enabled());
        assert!(ObsConfig::On(on).obs().enabled());
    }

    #[test]
    fn span_tree_is_a_pure_function_of_the_trace() {
        let run = || {
            let obs = Obs::with_clock(true, ticking(7));
            {
                let mut a = obs.span("a");
                a.record("n", 1);
                let _b = obs.span("b");
            }
            let _c = obs.span("c");
            drop(_c);
            (obs.span_tree(), obs.registry().unwrap().snapshot_jsonl())
        };
        assert_eq!(run(), run(), "identical traces render identically");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any u64 lands in a valid bucket whose bounds admit it.
        #[test]
        fn every_value_buckets_within_bounds(v in 0u64..=u64::MAX) {
            let idx = bucket_index(v);
            prop_assert!(idx < NUM_BUCKETS);
            prop_assert!(bucket_upper(idx) >= v);
            if idx > 0 {
                prop_assert!(bucket_upper(idx - 1) < v || idx >= LINEAR_MAX as usize);
            }
        }

        /// record_secs never panics, for any float bit pattern.
        #[test]
        fn record_secs_is_total(bits in 0u64..=u64::MAX) {
            let h = Histogram::new();
            h.record_secs(f64::from_bits(bits));
            prop_assert_eq!(h.count(), 1);
        }
    }
}
