//! Small dense linear-algebra helpers.
//!
//! PWL cost-function construction interpolates a linear function through the
//! `d + 1` vertices of a grid simplex, which amounts to solving a small
//! dense linear system. The systems involved are tiny (dimension ≤ 5 or so),
//! so a straightforward Gaussian elimination with partial pivoting is both
//! simple and adequate. The matrix is stored as a **flat row-major slice**
//! (`a[row * n + col]`) so callers can stage systems in reusable buffers
//! without nested allocations.

/// Solves the square linear system `A x = b` in place.
///
/// `a` is a flat row-major `n × n` matrix; `b` has length `n` and is
/// overwritten with the solution `x` on success. Returns `false` (leaving
/// `a`/`b` in a partially eliminated state) when the matrix is
/// (numerically) singular.
pub fn solve_linear_system_in_place(a: &mut [f64], b: &mut [f64]) -> bool {
    let n = b.len();
    debug_assert_eq!(a.len(), n * n);
    for col in 0..n {
        // Partial pivoting: bring the largest remaining entry into position.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i * n + col]
                    .abs()
                    .partial_cmp(&a[j * n + col].abs())
                    .expect("pivot magnitudes are comparable")
            })
            .expect("non-empty pivot candidates");
        if a[pivot_row * n + col].abs() < 1e-12 {
            return false;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            // Split borrows: the pivot row precedes `row` in the flat store.
            let (pivot_part, rest) = a.split_at_mut((col + 1) * n);
            let pivot_row_slice = &pivot_part[col * n..];
            let target = &mut rest[(row - col - 1) * n..(row - col) * n];
            for (t, p) in target[col..].iter_mut().zip(&pivot_row_slice[col..]) {
                *t -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution, overwriting `b` with `x`.
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * b[k];
        }
        b[row] = acc / a[row * n + row];
    }
    true
}

/// Solves the square linear system `A x = b`.
///
/// `a` is a flat row-major `n × n` matrix (`n = b.len()`). Returns `None`
/// when the matrix is (numerically) singular.
///
/// # Example
/// ```
/// let a = vec![2.0, 1.0, 1.0, 3.0]; // [[2, 1], [1, 3]] row-major
/// let x = mpq_lp::dense::solve_linear_system(a, vec![5.0, 10.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
pub fn solve_linear_system(mut a: Vec<f64>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    if solve_linear_system_in_place(&mut a, &mut b) {
        Some(b)
    } else {
        None
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_linear_system(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_3x3() {
        #[rustfmt::skip]
        let a = vec![
            2.0, -1.0, 0.0,
            -1.0, 2.0, -1.0,
            0.0, -1.0, 2.0,
        ];
        let b = [1.0, 0.0, 1.0];
        let x = solve_linear_system(a.clone(), b.to_vec()).unwrap();
        // Verify A x = b.
        for (row, &bi) in a.chunks(3).zip(&b) {
            assert!((dot(row, &x) - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_singular() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_linear_system(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_linear_system(a, vec![2.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn in_place_reuses_buffers() {
        let mut a = vec![3.0, 0.0, 0.0, 2.0];
        let mut b = vec![6.0, 8.0];
        assert!(solve_linear_system_in_place(&mut a, &mut b));
        assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
