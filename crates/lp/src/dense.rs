//! Small dense linear-algebra helpers.
//!
//! PWL cost-function construction interpolates a linear function through the
//! `d + 1` vertices of a grid simplex, which amounts to solving a small
//! dense linear system. The systems involved are tiny (dimension ≤ 5 or so),
//! so a straightforward Gaussian elimination with partial pivoting is both
//! simple and adequate.

/// Solves the square linear system `A x = b` in place.
///
/// `a` is a row-major `n × n` matrix; `b` has length `n`. Returns `None`
/// when the matrix is (numerically) singular.
///
/// # Example
/// ```
/// let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
/// let x = mpq_lp::dense::solve_linear_system(a, vec![5.0, 10.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    for col in 0..n {
        // Partial pivoting: bring the largest remaining entry into position.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("pivot magnitudes are comparable")
            })
            .expect("non-empty pivot candidates");
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            // Split borrows: the pivot row is disjoint from `row`.
            let (pivot_slice, rest) = a.split_at_mut(col + 1);
            let pivot_row = &pivot_slice[col];
            let target = &mut rest[row - col - 1];
            for (t, p) in target[col..].iter_mut().zip(&pivot_row[col..]) {
                *t -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear_system(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_3x3() {
        let a = vec![
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ];
        let x = solve_linear_system(a.clone(), vec![1.0, 0.0, 1.0]).unwrap();
        // Verify A x = b.
        for (row, &bi) in a.iter().zip(&[1.0, 0.0, 1.0]) {
            assert!((dot(row, &x) - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear_system(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear_system(a, vec![2.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
