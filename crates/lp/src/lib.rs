//! Dense linear programming for multi-objective parametric query optimization.
//!
//! The MPQ paper (Trummer & Koch, VLDB 2014) implements PWL-RRPA on top of
//! Gurobi; every elementary operation of the algorithm — emptiness checks on
//! relevance regions, dominance-region construction, redundant-constraint
//! elimination — reduces to small linear programs over the parameter space,
//! and Figure 12 of the paper reports the *number of solved LPs* as one of
//! its three evaluation metrics.
//!
//! This crate provides the substitute substrate: a from-scratch dense
//! two-phase simplex solver ([`solve`]) sized for the problems PWL-RRPA
//! produces (a handful of variables, tens of constraints), a solve-counting
//! context ([`LpCtx`]) that backs the Figure 12 metric, and a small dense
//! linear-system solver ([`dense::solve_linear_system`]) used to interpolate
//! linear cost functions on grid simplices.
//!
//! # Problem form
//!
//! All problems are stated as
//!
//! ```text
//! maximize  c · x
//! subject to  aᵢ · x ≤ bᵢ   for every constraint i
//! ```
//!
//! with `x ∈ Rⁿ` **free** (unrestricted in sign). Parameter-space polytopes
//! carry their own bound constraints, so no implicit non-negativity is
//! assumed.
//!
//! # Example
//!
//! ```
//! use mpq_lp::{Constraint, LpCtx, LpOutcome, LpProblem};
//!
//! // maximize x + y s.t. x <= 2, y <= 3, x + y <= 4
//! let problem = LpProblem::new(
//!     vec![1.0, 1.0],
//!     vec![
//!         Constraint::new(vec![1.0, 0.0], 2.0),
//!         Constraint::new(vec![0.0, 1.0], 3.0),
//!         Constraint::new(vec![1.0, 1.0], 4.0),
//!     ],
//! );
//! let ctx = LpCtx::default();
//! match ctx.solve(&problem) {
//!     LpOutcome::Optimal(sol) => {
//!         assert!((sol.value - 4.0).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! assert_eq!(ctx.solved(), 1);
//! ```

pub mod dense;
mod simplex;

pub use simplex::RowStage;

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Per-thread count of LPs solved through any [`LpCtx`] on this
    /// thread. Backs per-query LP deltas: a query that executes on one
    /// thread (every `threads = 1` run — the shim pool runs single-width
    /// fan-outs inline on the caller) sees exactly its own solves here,
    /// even while other queries of a batch run concurrently elsewhere.
    static THREAD_SOLVED: Cell<u64> = const { Cell::new(0) };
}

/// LPs solved through any [`LpCtx`] **on the calling thread** so far.
///
/// Deltas of this counter around a region of work give that region's own
/// LP count, unpolluted by concurrent work on other threads. Work that
/// fans out to other threads is not attributed to the submitting thread,
/// so deltas are exact only for single-threaded regions; multi-threaded
/// runs attribute through [`attribute_solves`] instead.
pub fn thread_solved() -> u64 {
    THREAD_SOLVED.with(|c| c.get())
}

use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// The per-run attribution counter installed on this thread (if any):
    /// every solve on the thread also increments it. Backs exact
    /// per-query LP attribution under fan-out — each worker item of a run
    /// installs the run's counter for its own scope, so solves are
    /// charged to the run no matter which thread executes them.
    static RUN_SOLVED: RefCell<Option<Arc<AtomicU64>>> = const { RefCell::new(None) };
}

/// Scope guard of [`attribute_solves`]: restores the previously installed
/// attribution counter on drop (stack discipline, so nested scopes — e.g.
/// a work-stealing worker picking up an item of another run — attribute
/// correctly).
pub struct SolveAttribution {
    prev: Option<Arc<AtomicU64>>,
}

impl Drop for SolveAttribution {
    fn drop(&mut self) {
        RUN_SOLVED.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `counter` as the calling thread's solve-attribution target
/// until the returned guard drops: every [`LpCtx`] solve on this thread
/// additionally increments it.
///
/// Counters are atomic and increments are sums, so a run that installs
/// one counter around each of its fan-out items gets an **exact,
/// schedule-independent** total even when its items run concurrently with
/// other runs on the same threads. Nested fan-outs must re-install the
/// submitting scope's counter ([`current_attribution`]) on their workers.
pub fn attribute_solves(counter: Arc<AtomicU64>) -> SolveAttribution {
    SolveAttribution {
        prev: RUN_SOLVED.with(|c| c.borrow_mut().replace(counter)),
    }
}

/// The attribution counter currently installed on this thread, for
/// propagation into nested fan-outs (each nested work item re-installs it
/// via [`attribute_solves`]).
pub fn current_attribution() -> Option<Arc<AtomicU64>> {
    RUN_SOLVED.with(|c| c.borrow().clone())
}

/// One solve happened on this thread: bump the thread-local counter and
/// the installed attribution counter, if any.
#[inline]
fn record_solve() {
    THREAD_SOLVED.with(|c| c.set(c.get() + 1));
    RUN_SOLVED.with(|c| {
        if let Some(run) = c.borrow().as_ref() {
            run.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Numerical tolerance used throughout the solver.
///
/// Constraint data produced by the geometry layer is normalised (unit-norm
/// constraint rows), which keeps a single absolute tolerance meaningful.
pub const EPS: f64 = 1e-9;

/// A single linear inequality `a · x ≤ b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficient vector `a` (one entry per variable).
    pub a: Vec<f64>,
    /// Right-hand side `b`.
    pub b: f64,
}

impl Constraint {
    /// Creates the constraint `a · x ≤ b`.
    pub fn new(a: Vec<f64>, b: f64) -> Self {
        Self { a, b }
    }

    /// Evaluates the slack `b - a · x`; non-negative iff `x` satisfies the
    /// constraint.
    pub fn slack(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(self.a.len(), x.len());
        self.b - self.a.iter().zip(x).map(|(ai, xi)| ai * xi).sum::<f64>()
    }
}

/// A linear program in the form `maximize c·x subject to A x ≤ b`, `x` free.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients `c` (the number of variables is `c.len()`).
    pub objective: Vec<f64>,
    /// Inequality constraints.
    pub constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates a new maximization problem.
    ///
    /// # Panics
    /// Panics (in debug builds) if a constraint's arity differs from the
    /// objective's.
    pub fn new(objective: Vec<f64>, constraints: Vec<Constraint>) -> Self {
        debug_assert!(constraints.iter().all(|c| c.a.len() == objective.len()));
        Self {
            objective,
            constraints,
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// A pure feasibility problem (zero objective) over the given
    /// constraints.
    pub fn feasibility(num_vars: usize, constraints: Vec<Constraint>) -> Self {
        Self::new(vec![0.0; num_vars], constraints)
    }
}

/// An optimal solution to a linear program.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// An optimal point.
    pub x: Vec<f64>,
    /// The optimal objective value `c · x`.
    pub value: f64,
}

/// Result of solving a linear program.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// A finite optimum was found.
    Optimal(LpSolution),
    /// The constraint set is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Returns the optimal solution, if any.
    pub fn optimal(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(sol) => Some(sol),
            _ => None,
        }
    }

    /// True iff the problem is feasible (optimal or unbounded).
    pub fn is_feasible(&self) -> bool {
        !matches!(self, LpOutcome::Infeasible)
    }
}

/// Solves a linear program without touching any statistics counter.
///
/// Prefer [`LpCtx::solve`] inside the optimizer so that the solved-LP count
/// reported by the experiment harness stays accurate.
pub fn solve(problem: &LpProblem) -> LpOutcome {
    simplex::solve(problem)
}

/// Solves `maximize objective · x` subject to rows staged by `fill`,
/// without touching any statistics counter.
///
/// This is the allocation-lean entry point: constraint rows are written
/// directly into per-thread scratch memory instead of being materialised
/// as [`Constraint`] values. Prefer [`LpCtx::solve_staged`] inside the
/// optimizer so the solved-LP count stays accurate.
pub fn solve_staged(objective: &[f64], fill: impl FnOnce(&mut RowStage)) -> LpOutcome {
    simplex::solve_staged(objective, fill)
}

/// The call sites whose exact geometric fast paths the context tracks:
/// each site answers a predicate either LP-free (a *hit*) or by falling
/// back to the solver (a *fallback*), and the per-site split tells future
/// optimization work where the remaining LP tail lives.
///
/// The sites themselves live in the geometry layer (`mpq-geometry`) and
/// the piecewise cost algebra (`mpq-cost`); the enum is defined here
/// because the shared `LpCtx` is the one object every such call site
/// already holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPathSite {
    /// Cutout-redundancy and halfspace-coverage queries of the region
    /// engine (`RegionEngine::halfspace_covers`), answered by exact
    /// vertex enumeration when decisive.
    CutoutRedundancy = 0,
    /// Cutout-emptiness prechecks when a multi-halfspace cutout is added
    /// (`RegionEngine::add_cutout`), answered by inscribed-ball
    /// certificates and exact interval/vertex emptiness.
    CutoutEmptiness = 1,
    /// Per-piece emptiness checks of the coverage (polytope-difference)
    /// machinery behind `IsEmpty`, plus per-piece Chebyshev witness
    /// verdicts in witness extraction (a cached-verdict reuse is a hit, a
    /// fresh `chebyshev_center` LP a fallback).
    Coverage = 2,
    /// Piecewise cost algebra (`combine` / `intersect_dedup` /
    /// `dominance_regions`): cross-pair and cut emptiness over piece
    /// regions.
    PieceAlgebra = 3,
}

impl FastPathSite {
    /// All sites, in counter order.
    pub const ALL: [FastPathSite; 4] = [
        FastPathSite::CutoutRedundancy,
        FastPathSite::CutoutEmptiness,
        FastPathSite::Coverage,
        FastPathSite::PieceAlgebra,
    ];

    /// Stable snake_case name (used as a JSON key by the bench harness).
    pub fn name(self) -> &'static str {
        match self {
            FastPathSite::CutoutRedundancy => "cutout_redundancy",
            FastPathSite::CutoutEmptiness => "cutout_emptiness",
            FastPathSite::Coverage => "coverage",
            FastPathSite::PieceAlgebra => "piece_algebra",
        }
    }
}

/// Snapshot of the per-site fast-path hit / LP-fallback counters of an
/// [`LpCtx`], indexed by `FastPathSite as usize`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathBreakdown {
    /// Queries answered without an LP, per site.
    pub fast: [u64; FastPathSite::ALL.len()],
    /// Queries that fell back to the LP solver, per site.
    pub lp: [u64; FastPathSite::ALL.len()],
}

impl FastPathBreakdown {
    /// Total LP-free answers across all sites.
    pub fn total_fast(&self) -> u64 {
        self.fast.iter().sum()
    }

    /// Total LP fallbacks across all sites.
    pub fn total_lp(&self) -> u64 {
        self.lp.iter().sum()
    }
}

/// Statistics-carrying solver context.
///
/// The MPQ evaluation (Figure 12) reports the number of LPs solved during
/// optimization; all geometry and cost-function operations route their
/// solves through a shared `LpCtx` so the harness can read the count. The
/// counter is atomic, so one context can be shared across worker threads.
///
/// The context also carries the per-site fast-path breakdown
/// ([`FastPathBreakdown`]): geometry predicates report whether they were
/// answered LP-free or fell back to the solver, giving the bench harness
/// an exact map of where the remaining LP tail lives.
#[derive(Debug, Default)]
pub struct LpCtx {
    solved: AtomicU64,
    fastpath_fast: [AtomicU64; FastPathSite::ALL.len()],
    fastpath_lp: [AtomicU64; FastPathSite::ALL.len()],
}

impl LpCtx {
    /// Creates a fresh context with a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves `problem`, incrementing the solved-LP counter.
    pub fn solve(&self, problem: &LpProblem) -> LpOutcome {
        self.solved.fetch_add(1, Ordering::Relaxed);
        record_solve();
        simplex::solve(problem)
    }

    /// Maximizes `objective` subject to `constraints`.
    pub fn maximize(&self, objective: Vec<f64>, constraints: Vec<Constraint>) -> LpOutcome {
        self.solve(&LpProblem::new(objective, constraints))
    }

    /// Solves `maximize objective · x` subject to rows staged by `fill`,
    /// incrementing the solved-LP counter. See [`solve_staged`].
    pub fn solve_staged(&self, objective: &[f64], fill: impl FnOnce(&mut RowStage)) -> LpOutcome {
        self.solved.fetch_add(1, Ordering::Relaxed);
        record_solve();
        simplex::solve_staged(objective, fill)
    }

    /// Number of LPs solved through this context so far.
    pub fn solved(&self) -> u64 {
        self.solved.load(Ordering::Relaxed)
    }

    /// Records that `site` answered a predicate without an LP.
    #[inline]
    pub fn fastpath_hit(&self, site: FastPathSite) {
        self.fastpath_fast[site as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records that `site` fell back to the LP solver for a predicate.
    #[inline]
    pub fn fastpath_fallback(&self, site: FastPathSite) {
        self.fastpath_lp[site as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the per-site fast-path breakdown.
    pub fn fastpath_breakdown(&self) -> FastPathBreakdown {
        let mut out = FastPathBreakdown::default();
        for i in 0..FastPathSite::ALL.len() {
            out.fast[i] = self.fastpath_fast[i].load(Ordering::Relaxed);
            out.lp[i] = self.fastpath_lp[i].load(Ordering::Relaxed);
        }
        out
    }

    /// Publishes the current solved-LP count and the per-site fast-path
    /// attribution into an observability registry, as gauges named
    /// `lp_solved` and `lp_fastpath_<site>_{fast,lp}`. Gauges have set
    /// semantics, so republishing after more work simply refreshes the
    /// snapshot — the idiom is to call this at the end of each unit of
    /// work (the optimizer does so per optimization when an
    /// [`mpq_obs::Obs`] handle is installed).
    pub fn publish_to(&self, registry: &mpq_obs::Registry) {
        registry.gauge("lp_solved").set(self.solved());
        let b = self.fastpath_breakdown();
        for site in FastPathSite::ALL {
            registry
                .gauge(&format!("lp_fastpath_{}_fast", site.name()))
                .set(b.fast[site as usize]);
            registry
                .gauge(&format!("lp_fastpath_{}_lp", site.name()))
                .set(b.lp[site as usize]);
        }
    }

    /// Resets the solved-LP counter and the fast-path breakdown to zero.
    pub fn reset(&self) {
        self.solved.store(0, Ordering::Relaxed);
        for i in 0..FastPathSite::ALL.len() {
            self.fastpath_fast[i].store(0, Ordering::Relaxed);
            self.fastpath_lp[i].store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(a: Vec<f64>, b: f64) -> Constraint {
        Constraint::new(a, b)
    }

    #[test]
    fn maximize_simple_box() {
        let p = LpProblem::new(
            vec![3.0, 2.0],
            vec![
                c(vec![1.0, 0.0], 4.0),
                c(vec![0.0, 1.0], 5.0),
                c(vec![-1.0, 0.0], 0.0),
                c(vec![0.0, -1.0], 0.0),
            ],
        );
        let sol = solve(&p).optimal().expect("optimal");
        assert!((sol.value - 22.0).abs() < 1e-7, "value = {}", sol.value);
        assert!((sol.x[0] - 4.0).abs() < 1e-7);
        assert!((sol.x[1] - 5.0).abs() < 1e-7);
    }

    #[test]
    fn free_variables_negative_optimum() {
        // maximize -x s.t. x >= 3  (i.e. -x <= -3); optimum at x = 3.
        let p = LpProblem::new(vec![-1.0], vec![c(vec![-1.0], -3.0), c(vec![1.0], 10.0)]);
        let sol = solve(&p).optimal().expect("optimal");
        assert!((sol.value + 3.0).abs() < 1e-7);
        assert!((sol.x[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2.
        let p = LpProblem::feasibility(1, vec![c(vec![1.0], 1.0), c(vec![-1.0], -2.0)]);
        assert!(matches!(solve(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // maximize x s.t. x >= 0 — unbounded above.
        let p = LpProblem::new(vec![1.0], vec![c(vec![-1.0], 0.0)]);
        assert!(matches!(solve(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn feasibility_with_zero_objective_is_optimal() {
        let p = LpProblem::feasibility(2, vec![c(vec![1.0, 1.0], 1.0)]);
        match solve(&p) {
            LpOutcome::Optimal(sol) => assert!(sol.value.abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_equality_via_two_inequalities() {
        // x + y <= 1 and x + y >= 1, maximize x with 0 <= x,y.
        let p = LpProblem::new(
            vec![1.0, 0.0],
            vec![
                c(vec![1.0, 1.0], 1.0),
                c(vec![-1.0, -1.0], -1.0),
                c(vec![-1.0, 0.0], 0.0),
                c(vec![0.0, -1.0], 0.0),
            ],
        );
        let sol = solve(&p).optimal().expect("optimal");
        assert!((sol.value - 1.0).abs() < 1e-7);
    }

    #[test]
    fn no_constraints_zero_objective() {
        let p = LpProblem::feasibility(2, vec![]);
        assert!(solve(&p).is_feasible());
    }

    #[test]
    fn no_constraints_nonzero_objective_unbounded() {
        let p = LpProblem::new(vec![1.0, -1.0], vec![]);
        assert!(matches!(solve(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn ctx_counts_solves() {
        let ctx = LpCtx::new();
        let p = LpProblem::feasibility(1, vec![c(vec![1.0], 1.0)]);
        ctx.solve(&p);
        ctx.solve(&p);
        assert_eq!(ctx.solved(), 2);
        ctx.reset();
        assert_eq!(ctx.solved(), 0);
    }

    #[test]
    fn fastpath_breakdown_counts_per_site() {
        let ctx = LpCtx::new();
        ctx.fastpath_hit(FastPathSite::Coverage);
        ctx.fastpath_hit(FastPathSite::Coverage);
        ctx.fastpath_fallback(FastPathSite::PieceAlgebra);
        let b = ctx.fastpath_breakdown();
        assert_eq!(b.fast[FastPathSite::Coverage as usize], 2);
        assert_eq!(b.lp[FastPathSite::PieceAlgebra as usize], 1);
        assert_eq!(b.total_fast(), 2);
        assert_eq!(b.total_lp(), 1);
        ctx.reset();
        assert_eq!(ctx.fastpath_breakdown(), FastPathBreakdown::default());
    }

    #[test]
    fn publish_to_mirrors_breakdown_as_gauges() {
        let ctx = LpCtx::new();
        let p = LpProblem::feasibility(1, vec![c(vec![1.0], 1.0)]);
        ctx.solve(&p);
        ctx.fastpath_hit(FastPathSite::Coverage);
        ctx.fastpath_fallback(FastPathSite::Coverage);
        let registry = mpq_obs::Registry::new();
        ctx.publish_to(&registry);
        assert_eq!(registry.gauge("lp_solved").get(), 1);
        assert_eq!(registry.gauge("lp_fastpath_coverage_fast").get(), 1);
        assert_eq!(registry.gauge("lp_fastpath_coverage_lp").get(), 1);
        assert_eq!(registry.gauge("lp_fastpath_piece_algebra_fast").get(), 0);
        // Republishing after more work refreshes, not accumulates.
        ctx.solve(&p);
        ctx.publish_to(&registry);
        assert_eq!(registry.gauge("lp_solved").get(), 2);
    }

    #[test]
    fn thread_solved_tracks_ctx_solves() {
        let ctx = LpCtx::new();
        let p = LpProblem::feasibility(1, vec![c(vec![1.0], 1.0)]);
        let before = thread_solved();
        ctx.solve(&p);
        ctx.solve_staged(&[0.0], |stage| stage.push_row(&[1.0], 1.0));
        assert_eq!(thread_solved() - before, 2);
        // Resetting the context does not rewind the thread counter (it is
        // monotonic; consumers take deltas).
        ctx.reset();
        assert_eq!(thread_solved() - before, 2);
    }

    #[test]
    fn negative_rhs_requires_phase_one() {
        // Feasible region: x >= 1, x <= 2 written with a negative RHS row.
        let p = LpProblem::new(vec![1.0], vec![c(vec![-1.0], -1.0), c(vec![1.0], 2.0)]);
        let sol = solve(&p).optimal().expect("optimal");
        assert!((sol.value - 2.0).abs() < 1e-7);
    }

    #[test]
    fn solution_satisfies_all_constraints() {
        let p = LpProblem::new(
            vec![1.0, 2.0, -1.0],
            vec![
                c(vec![1.0, 1.0, 1.0], 6.0),
                c(vec![1.0, -1.0, 2.0], 4.0),
                c(vec![-1.0, 0.0, 0.0], 0.0),
                c(vec![0.0, -1.0, 0.0], 0.0),
                c(vec![0.0, 0.0, -1.0], 0.0),
            ],
        );
        let sol = solve(&p).optimal().expect("optimal");
        for con in &p.constraints {
            assert!(
                con.slack(&sol.x) >= -1e-7,
                "violated: {con:?} at {:?}",
                sol.x
            );
        }
    }
}
