//! Two-phase dense simplex over reusable flat scratch memory, with a
//! **folded tableau**: free decision variables are still modelled as
//! differences of non-negative variables (`x = u − v`), but the `v`
//! columns are not stored. While neither member of a `u/v` pair has ever
//! been pivoted on, the `v` column is the exact bitwise negation of the
//! `u` column — every tableau update preserves this (IEEE rounding is
//! symmetric under negation) — so reads resolve through a sign flip. The
//! first pivot on either member of a pair breaks the invariant (the
//! entering column is explicitly zeroed, its twin picks up elimination
//! round-off), so the twin column is **materialised** (appended as a real
//! column, as the exact negation it still is at that moment) immediately
//! before such a pivot. Pairs the optimum never touches — common for the
//! geometry layer's sign-mixed objectives — never pay for their `v`
//! column, shaving up to `n` of the `2n + m` tableau columns from every
//! elimination.
//!
//! Pivot selection (Dantzig with a Bland fallback), the ratio test, and
//! every arithmetic operation scan **logical** columns in the exact order
//! of the unfolded layout `[u | v | slack | artificial]`, and all stored
//! values equal the unfolded tableau's bit for bit (negation reads are
//! exact), so pivot sequences — and therefore every outcome, solution
//! vector and verdict — are bit-identical to the unfolded solver
//! (asserted against a reference implementation by
//! `tests/folded_proptest.rs`).
//!
//! Phase 1 maximizes the negated sum of artificials; phase 2 maximizes
//! the real objective. The Bland fallback after a fixed iteration budget
//! guarantees termination on degenerate problems.
//!
//! # Memory
//!
//! PWL-RRPA solves millions of tiny LPs per optimization (Figure 12 of the
//! paper); allocating a fresh tableau per solve dominated the profile. All
//! working storage — the staged constraint rows, the tableau (a flat
//! row-major matrix), right-hand sides, basis, reduced costs — lives in a
//! per-thread [`Scratch`] that is reused across solves, so the steady
//! state allocates only the returned solution vector. Callers stage
//! constraint rows directly via [`solve_staged`], which avoids
//! materialising `LpProblem`/`Constraint` values entirely.

use crate::{LpOutcome, LpProblem, LpSolution, EPS};
use std::cell::RefCell;

/// Feasibility tolerance for the phase-1 optimum (looser than [`EPS`] to
/// absorb accumulated floating-point error over many pivots).
const FEAS_EPS: f64 = 1e-7;

/// Minimum acceptable magnitude for a pivot element.
const PIVOT_EPS: f64 = 1e-11;

/// Reusable per-thread working memory for the solver.
#[derive(Default)]
struct Scratch {
    /// Staged constraint coefficients, row-major `m × n`.
    stage: Vec<f64>,
    /// Staged right-hand sides, length `m`.
    stage_rhs: Vec<f64>,
    /// Folded tableau `B⁻¹ A`, row-major `m × stride`.
    tab: Vec<f64>,
    /// `B⁻¹ b`, kept non-negative.
    rhs: Vec<f64>,
    /// **Logical** column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Rows that received an artificial variable.
    art_rows: Vec<usize>,
    /// Reduced-cost row over **physical** columns.
    z: Vec<f64>,
    /// Logical columns excluded as reduced-cost noise (phase 1).
    skipped: Vec<bool>,
    /// Copy of the normalised pivot row during eliminations.
    pivot_buf: Vec<f64>,
    /// Physical column of each variable's materialised `v` twin
    /// (`usize::MAX` while folded).
    twin: Vec<usize>,
    /// Variable index owning each materialised twin, in append order.
    twin_owner: Vec<usize>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Staging area for constraint rows, borrowed from the per-thread scratch.
///
/// Rows are `a · x ≤ b`; [`RowStage::push_row_aug`] appends one extra
/// trailing coefficient, which lets callers state augmented systems (e.g.
/// Chebyshev-radius LPs over `[x | t]`) without building temporary rows.
pub struct RowStage<'a> {
    coeffs: &'a mut Vec<f64>,
    rhs: &'a mut Vec<f64>,
    num_vars: usize,
}

impl RowStage<'_> {
    /// Number of decision variables rows must match.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Stages the constraint `a · x ≤ b`.
    pub fn push_row(&mut self, a: &[f64], b: f64) {
        debug_assert_eq!(a.len(), self.num_vars);
        self.coeffs.extend_from_slice(a);
        self.rhs.push(b);
    }

    /// Stages `a · x + extra · x_last ≤ b` where `a` covers all variables
    /// but the last (an augmented system over `[x | t]`).
    pub fn push_row_aug(&mut self, a: &[f64], extra: f64, b: f64) {
        debug_assert_eq!(a.len() + 1, self.num_vars);
        self.coeffs.extend_from_slice(a);
        self.coeffs.push(extra);
        self.rhs.push(b);
    }
}

enum RunResult {
    Optimal,
    Unbounded,
}

/// The cost vector of the current phase, evaluated on demand over
/// logical columns (never materialised).
#[derive(Clone, Copy)]
enum Cost<'a> {
    /// Phase 1: `−1` on artificial columns (`art0_logical..`), `0`
    /// elsewhere.
    Phase1 { art0_logical: usize },
    /// Phase 2: the real objective over `u`/`v`, `0` on slacks.
    Phase2 { objective: &'a [f64] },
}

impl Cost<'_> {
    #[inline]
    fn at(&self, logical: usize, nvars: usize) -> f64 {
        match *self {
            Cost::Phase1 { art0_logical } => {
                if logical >= art0_logical {
                    -1.0
                } else {
                    0.0
                }
            }
            Cost::Phase2 { objective } => {
                if logical < nvars {
                    objective[logical]
                } else if logical < 2 * nvars {
                    -objective[logical - nvars]
                } else {
                    0.0
                }
            }
        }
    }
}

/// Folded tableau view over scratch storage.
///
/// Physical layout per row: `[x (nvars) | slack (nslack) | artificial
/// (nart) | twins (in materialisation order)]`, `stride` is the row
/// stride (the worst-case width), `active` the live physical width.
/// Logical columns keep the unfolded numbering `[u (nvars) | v (nvars) |
/// slack | artificial]`; [`Tableau::basis`] stores logical indices.
struct Tableau<'a> {
    tab: &'a mut Vec<f64>,
    rhs: &'a mut Vec<f64>,
    basis: &'a mut Vec<usize>,
    pivot_buf: &'a mut Vec<f64>,
    twin: &'a mut Vec<usize>,
    twin_owner: &'a mut Vec<usize>,
    stride: usize,
    active: usize,
    nvars: usize,
    nslack: usize,
    /// Physical artificial columns still present (zeroed after phase 1).
    nart: usize,
    /// Logical column count of the current phase.
    logical_ncols: usize,
}

impl Tableau<'_> {
    fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    /// First physical twin column.
    #[inline]
    fn twin_base(&self) -> usize {
        self.nvars + self.nslack + self.nart
    }

    /// Resolves a logical column to `(physical column, negated)`.
    /// `negated` is only ever true for the `v` member of a still-folded
    /// pair.
    #[inline]
    fn resolve(&self, logical: usize) -> (usize, bool) {
        if logical < self.nvars {
            (logical, false)
        } else if logical < 2 * self.nvars {
            let j = logical - self.nvars;
            let t = self.twin[j];
            if t == usize::MAX {
                (j, true)
            } else {
                (t, false)
            }
        } else {
            // Slack and artificial columns sit right after the variables.
            (logical - self.nvars, false)
        }
    }

    /// The logical column a physical column currently represents.
    #[inline]
    fn logical_of(&self, phys: usize) -> usize {
        if phys < self.nvars {
            phys
        } else if phys < self.twin_base() {
            self.nvars + phys
        } else {
            self.nvars + self.twin_owner[phys - self.twin_base()]
        }
    }

    /// Tableau value of `(row, logical column)`, resolved through the
    /// fold (exact: negation is bitwise).
    #[inline]
    fn value(&self, row: usize, logical: usize) -> f64 {
        let (p, neg) = self.resolve(logical);
        let v = self.tab[row * self.stride + p];
        if neg {
            -v
        } else {
            v
        }
    }

    /// Reduced cost of a logical column.
    #[inline]
    fn z_at(&self, z: &[f64], logical: usize) -> f64 {
        let (p, neg) = self.resolve(logical);
        let v = z[p];
        if neg {
            -v
        } else {
            v
        }
    }

    /// Ensures the logical column can be pivoted on in place: pivoting on
    /// either member of a folded pair breaks the negation invariant, so
    /// the `v` twin is materialised first — appended as the exact
    /// negation it still is at this moment, after which both columns
    /// evolve independently exactly like the unfolded tableau's.
    fn unfold_for_pivot(&mut self, logical: usize, z: &mut Vec<f64>) -> usize {
        if logical >= 2 * self.nvars {
            return logical - self.nvars; // slack/artificial: direct
        }
        let j = if logical < self.nvars {
            logical
        } else {
            logical - self.nvars
        };
        if self.twin[j] == usize::MAX {
            let p = self.active;
            debug_assert!(p < self.stride);
            for i in 0..self.num_rows() {
                self.tab[i * self.stride + p] = -self.tab[i * self.stride + j];
            }
            if z.len() <= p {
                z.resize(p + 1, 0.0);
            }
            z[p] = -z[j];
            self.twin[j] = p;
            self.twin_owner.push(j);
            self.active += 1;
        }
        let (p, neg) = self.resolve(logical);
        debug_assert!(!neg);
        p
    }

    /// Pivots on `(row, logical column)`, updating the reduced-cost row.
    fn pivot(&mut self, row: usize, logical: usize, z: &mut Vec<f64>) {
        let col = self.unfold_for_pivot(logical, z);
        let stride = self.stride;
        let active = self.active;
        let pivot = self.tab[row * stride + col];
        debug_assert!(pivot.abs() > PIVOT_EPS);
        let inv = 1.0 / pivot;
        for v in &mut self.tab[row * stride..row * stride + active] {
            *v *= inv;
        }
        self.rhs[row] *= inv;
        // Copy the normalised pivot row out so other rows can be eliminated
        // against it without aliasing.
        self.pivot_buf.clear();
        self.pivot_buf
            .extend_from_slice(&self.tab[row * stride..row * stride + active]);
        let pivot_rhs = self.rhs[row];
        for i in 0..self.num_rows() {
            if i == row {
                continue;
            }
            let factor = self.tab[i * stride + col];
            if factor.abs() > PIVOT_EPS {
                let r = &mut self.tab[i * stride..i * stride + active];
                for (v, pv) in r.iter_mut().zip(self.pivot_buf.iter()) {
                    *v -= factor * pv;
                }
                r[col] = 0.0;
                self.rhs[i] -= factor * pivot_rhs;
                if self.rhs[i] < 0.0 && self.rhs[i] > -FEAS_EPS {
                    self.rhs[i] = 0.0;
                }
            }
        }
        let factor = z[col];
        if factor.abs() > PIVOT_EPS {
            for (v, pv) in z.iter_mut().zip(self.pivot_buf.iter()) {
                *v -= factor * pv;
            }
            z[col] = 0.0;
        }
        self.basis[row] = logical;
    }

    /// Runs the simplex method to optimality for the given cost vector
    /// (maximization), starting from the current basic feasible solution.
    ///
    /// With `bounded_objective`, the caller guarantees the objective is
    /// bounded above (true for phase 1, whose optimum is at most 0); an
    /// entering column without a valid ratio row is then floating-point
    /// noise in the reduced costs and is skipped rather than reported as
    /// unbounded.
    fn run(
        &mut self,
        cost: Cost<'_>,
        bounded_objective: bool,
        z: &mut Vec<f64>,
        skipped: &mut Vec<bool>,
    ) -> RunResult {
        // Reduced-cost row over physical columns:
        // z[p] = c_B · B⁻¹ A_p − c_p, accumulated row by row exactly like
        // the unfolded solver (folded `v` values are exact negations of
        // their `u` entries throughout, by symmetry of IEEE rounding).
        z.clear();
        for p in 0..self.active {
            z.push(-cost.at(self.logical_of(p), self.nvars));
        }
        for i in 0..self.num_rows() {
            let cb = cost.at(self.basis[i], self.nvars);
            if cb != 0.0 {
                let row = &self.tab[i * self.stride..i * self.stride + self.active];
                for (zj, rj) in z.iter_mut().zip(row) {
                    *zj += cb * rj;
                }
            }
        }
        let bland_after = 200 + 20 * (self.num_rows() + self.logical_ncols);
        let mut iter = 0usize;
        skipped.clear();
        skipped.resize(self.logical_ncols, false);
        let mut any_skipped = false;
        loop {
            let use_bland = iter > bland_after;
            // Entering column: most negative reduced cost (Dantzig) or the
            // first negative one (Bland, termination-safe), scanning
            // logical columns in unfolded order.
            let mut entering: Option<usize> = None;
            let mut best = -EPS;
            #[allow(clippy::needless_range_loop)] // z is indexed through the fold, not by j
            for j in 0..self.logical_ncols {
                let zj = self.z_at(z, j);
                if zj < best && !skipped[j] {
                    entering = Some(j);
                    if use_bland {
                        break;
                    }
                    best = zj;
                }
            }
            let Some(e) = entering else {
                return RunResult::Optimal;
            };
            // Ratio test; ties broken by smallest basis index (Bland-compatible).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.num_rows() {
                let coeff = self.value(i, e);
                if coeff > EPS {
                    let ratio = self.rhs[i] / coeff;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                if bounded_objective {
                    // Impossible ray for a bounded objective: reduced-cost
                    // noise. Exclude the column and continue.
                    skipped[e] = true;
                    any_skipped = true;
                    continue;
                }
                return RunResult::Unbounded;
            };
            // A pivot invalidates the noise exclusions (reduced costs are
            // recomputed implicitly through the eliminations).
            if any_skipped {
                skipped.fill(false);
                any_skipped = false;
            }
            self.pivot(r, e, z);
            iter += 1;
            assert!(
                iter < 1_000_000,
                "simplex failed to terminate (numerical issue)"
            );
        }
    }

    /// Current value of a logical column in the basic solution.
    fn column_value(&self, logical: usize) -> f64 {
        self.basis
            .iter()
            .position(|&b| b == logical)
            .map_or(0.0, |i| self.rhs[i])
    }
}

pub(crate) fn solve(problem: &LpProblem) -> LpOutcome {
    solve_staged(&problem.objective, |stage| {
        for con in &problem.constraints {
            stage.push_row(&con.a, con.b);
        }
    })
}

/// Solves `maximize objective · x` subject to the rows staged by `fill`,
/// using per-thread scratch memory (no steady-state allocation beyond the
/// returned solution).
pub(crate) fn solve_staged(objective: &[f64], fill: impl FnOnce(&mut RowStage)) -> LpOutcome {
    SCRATCH.with(|cell| {
        // Re-entrant callers (a `fill` that itself solves an LP) fall back
        // to fresh scratch; the hot paths never do this.
        match cell.try_borrow_mut() {
            Ok(mut scratch) => solve_in(&mut scratch, objective, fill),
            Err(_) => solve_in(&mut Scratch::default(), objective, fill),
        }
    })
}

fn solve_in(
    scratch: &mut Scratch,
    objective: &[f64],
    fill: impl FnOnce(&mut RowStage),
) -> LpOutcome {
    let n = objective.len();
    scratch.stage.clear();
    scratch.stage_rhs.clear();
    {
        let mut stage = RowStage {
            coeffs: &mut scratch.stage,
            rhs: &mut scratch.stage_rhs,
            num_vars: n,
        };
        fill(&mut stage);
    }
    let m = scratch.stage_rhs.len();

    // Trivial cases without constraints (or without variables).
    if m == 0 {
        return if objective.iter().all(|&c| c.abs() <= EPS) {
            LpOutcome::Optimal(LpSolution {
                x: vec![0.0; n],
                value: 0.0,
            })
        } else {
            LpOutcome::Unbounded
        };
    }
    if n == 0 {
        // Constraints read `0 ≤ b`.
        return if scratch.stage_rhs.iter().all(|&b| b >= -EPS) {
            LpOutcome::Optimal(LpSolution {
                x: vec![],
                value: 0.0,
            })
        } else {
            LpOutcome::Infeasible
        };
    }

    // Logical layout: [u (n) | v (n) | slack (m) | artificial (n_art)].
    let slack0 = 2 * n;
    scratch.art_rows.clear();
    for (i, &b) in scratch.stage_rhs.iter().enumerate() {
        if b < 0.0 {
            scratch.art_rows.push(i);
        }
    }
    let n_art = scratch.art_rows.len();
    let art0 = slack0 + m;
    let logical_ncols = art0 + n_art;
    // Physical layout: [x (n) | slack (m) | artificial (n_art) | up to n
    // lazily materialised twins]; stride is the worst-case width.
    let phys0 = n + m + n_art;
    let stride = phys0 + n;

    scratch.tab.clear();
    scratch.tab.resize(m * stride, 0.0);
    scratch.rhs.clear();
    scratch.basis.clear();
    scratch.twin.clear();
    scratch.twin.resize(n, usize::MAX);
    scratch.twin_owner.clear();
    for i in 0..m {
        let b = scratch.stage_rhs[i];
        let negate = b < 0.0;
        let sign = if negate { -1.0 } else { 1.0 };
        let row = &mut scratch.tab[i * stride..(i + 1) * stride];
        for (j, &aj) in scratch.stage[i * n..(i + 1) * n].iter().enumerate() {
            row[j] = sign * aj;
        }
        row[n + i] = sign;
        scratch.rhs.push(sign * b);
        scratch.basis.push(slack0 + i);
    }
    for (k, &i) in scratch.art_rows.iter().enumerate() {
        scratch.tab[i * stride + n + m + k] = 1.0;
        scratch.basis[i] = art0 + k;
    }

    let mut t = Tableau {
        tab: &mut scratch.tab,
        rhs: &mut scratch.rhs,
        basis: &mut scratch.basis,
        pivot_buf: &mut scratch.pivot_buf,
        twin: &mut scratch.twin,
        twin_owner: &mut scratch.twin_owner,
        stride,
        active: phys0,
        nvars: n,
        nslack: m,
        nart: n_art,
        logical_ncols,
    };
    let z = &mut scratch.z;
    let skipped = &mut scratch.skipped;

    // Phase 1: drive artificials to zero.
    if n_art > 0 {
        match t.run(Cost::Phase1 { art0_logical: art0 }, true, z, skipped) {
            RunResult::Unbounded => unreachable!("phase-1 objective is bounded above by 0"),
            RunResult::Optimal => {}
        }
        let art_sum: f64 = (art0..logical_ncols).map(|c| t.column_value(c)).sum();
        if art_sum > FEAS_EPS {
            return LpOutcome::Infeasible;
        }
        // Drive any degenerate artificial out of the basis, or drop its row.
        let mut i = 0;
        while i < t.num_rows() {
            if t.basis[i] >= art0 {
                let col = (0..art0).find(|&j| t.value(i, j).abs() > 1e-9);
                match col {
                    Some(j) => {
                        z.clear();
                        z.resize(t.active, 0.0);
                        t.pivot(i, j, z);
                        i += 1;
                    }
                    None => {
                        // Redundant row: remove it (move the last row in).
                        let last = t.num_rows() - 1;
                        if i != last {
                            let (head, tail) = t.tab.split_at_mut(last * stride);
                            head[i * stride..i * stride + stride].copy_from_slice(&tail[..stride]);
                        }
                        t.tab.truncate(last * stride);
                        t.rhs.swap_remove(i);
                        t.basis.swap_remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
        // Remove the artificial columns: compact each row so the twin
        // block moves down over the artificial block, and re-point the
        // twin map.
        let twin_count = t.twin_owner.len();
        let old_twin_base = t.twin_base();
        let rows = t.num_rows();
        for i in 0..rows {
            for k in 0..twin_count {
                t.tab[i * stride + n + m + k] = t.tab[i * stride + old_twin_base + k];
            }
        }
        for tw in t.twin.iter_mut() {
            if *tw != usize::MAX {
                *tw -= n_art;
            }
        }
        t.nart = 0;
        t.active -= n_art;
        t.logical_ncols = art0;
    }

    // Phase 2: the real objective over [u | v | slack].
    match t.run(Cost::Phase2 { objective }, false, z, skipped) {
        RunResult::Unbounded => LpOutcome::Unbounded,
        RunResult::Optimal => {
            let mut x = vec![0.0; n];
            for (i, &b) in t.basis.iter().enumerate() {
                if b < n {
                    x[b] += t.rhs[i];
                } else if b < 2 * n {
                    x[b - n] -= t.rhs[i];
                }
            }
            let value = objective.iter().zip(&x).map(|(c, xi)| c * xi).sum();
            LpOutcome::Optimal(LpSolution { x, value })
        }
    }
}
