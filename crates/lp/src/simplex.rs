//! Two-phase dense simplex over reusable flat scratch memory.
//!
//! Free decision variables are split into differences of non-negative
//! variables (`x = u − v`), one slack variable is added per inequality and
//! artificial variables are introduced for rows whose right-hand side is
//! negative. Phase 1 maximizes the negated sum of artificials; phase 2
//! maximizes the real objective. Pivoting uses Dantzig's rule with a
//! fallback to Bland's rule after a fixed iteration budget, which guarantees
//! termination on degenerate problems.
//!
//! # Memory
//!
//! PWL-RRPA solves millions of tiny LPs per optimization (Figure 12 of the
//! paper); allocating a fresh tableau per solve dominated the profile. All
//! working storage — the staged constraint rows, the tableau (a flat
//! row-major matrix), right-hand sides, basis, reduced costs — lives in a
//! per-thread [`Scratch`] that is reused across solves, so the steady
//! state allocates only the returned solution vector. Callers stage
//! constraint rows directly via [`solve_staged`], which avoids
//! materialising `LpProblem`/`Constraint` values entirely.

use crate::{LpOutcome, LpProblem, LpSolution, EPS};
use std::cell::RefCell;

/// Feasibility tolerance for the phase-1 optimum (looser than [`EPS`] to
/// absorb accumulated floating-point error over many pivots).
const FEAS_EPS: f64 = 1e-7;

/// Minimum acceptable magnitude for a pivot element.
const PIVOT_EPS: f64 = 1e-11;

/// Reusable per-thread working memory for the solver.
#[derive(Default)]
struct Scratch {
    /// Staged constraint coefficients, row-major `m × n`.
    stage: Vec<f64>,
    /// Staged right-hand sides, length `m`.
    stage_rhs: Vec<f64>,
    /// Tableau `B⁻¹ A`, row-major `m × ncols`.
    tab: Vec<f64>,
    /// `B⁻¹ b`, kept non-negative.
    rhs: Vec<f64>,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Rows that received an artificial variable.
    art_rows: Vec<usize>,
    /// Reduced-cost row.
    z: Vec<f64>,
    /// Cost vector of the current phase.
    cost: Vec<f64>,
    /// Columns excluded as reduced-cost noise (phase 1).
    skipped: Vec<bool>,
    /// Copy of the normalised pivot row during eliminations.
    pivot_buf: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Staging area for constraint rows, borrowed from the per-thread scratch.
///
/// Rows are `a · x ≤ b`; [`RowStage::push_row_aug`] appends one extra
/// trailing coefficient, which lets callers state augmented systems (e.g.
/// Chebyshev-radius LPs over `[x | t]`) without building temporary rows.
pub struct RowStage<'a> {
    coeffs: &'a mut Vec<f64>,
    rhs: &'a mut Vec<f64>,
    num_vars: usize,
}

impl RowStage<'_> {
    /// Number of decision variables rows must match.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Stages the constraint `a · x ≤ b`.
    pub fn push_row(&mut self, a: &[f64], b: f64) {
        debug_assert_eq!(a.len(), self.num_vars);
        self.coeffs.extend_from_slice(a);
        self.rhs.push(b);
    }

    /// Stages `a · x + extra · x_last ≤ b` where `a` covers all variables
    /// but the last (an augmented system over `[x | t]`).
    pub fn push_row_aug(&mut self, a: &[f64], extra: f64, b: f64) {
        debug_assert_eq!(a.len() + 1, self.num_vars);
        self.coeffs.extend_from_slice(a);
        self.coeffs.push(extra);
        self.rhs.push(b);
    }
}

enum RunResult {
    Optimal,
    Unbounded,
}

/// Tableau view over scratch storage; `ncols` is the row stride.
struct Tableau<'a> {
    tab: &'a mut Vec<f64>,
    rhs: &'a mut Vec<f64>,
    basis: &'a mut Vec<usize>,
    pivot_buf: &'a mut Vec<f64>,
    ncols: usize,
}

impl Tableau<'_> {
    fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.tab[i * self.ncols..(i + 1) * self.ncols]
    }

    #[inline]
    fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.tab[i * self.ncols..(i + 1) * self.ncols]
    }

    fn pivot(&mut self, row: usize, col: usize, z: &mut [f64]) {
        let nc = self.ncols;
        let pivot = self.tab[row * nc + col];
        debug_assert!(pivot.abs() > PIVOT_EPS);
        let inv = 1.0 / pivot;
        for v in self.row_mut(row) {
            *v *= inv;
        }
        self.rhs[row] *= inv;
        // Copy the normalised pivot row out so other rows can be eliminated
        // against it without aliasing.
        self.pivot_buf.clear();
        self.pivot_buf
            .extend_from_slice(&self.tab[row * nc..(row + 1) * nc]);
        let pivot_rhs = self.rhs[row];
        for i in 0..self.num_rows() {
            if i == row {
                continue;
            }
            let factor = self.tab[i * nc + col];
            if factor.abs() > PIVOT_EPS {
                let r = &mut self.tab[i * nc..(i + 1) * nc];
                for (v, pv) in r.iter_mut().zip(self.pivot_buf.iter()) {
                    *v -= factor * pv;
                }
                r[col] = 0.0;
                self.rhs[i] -= factor * pivot_rhs;
                if self.rhs[i] < 0.0 && self.rhs[i] > -FEAS_EPS {
                    self.rhs[i] = 0.0;
                }
            }
        }
        let factor = z[col];
        if factor.abs() > PIVOT_EPS {
            for (v, pv) in z.iter_mut().zip(self.pivot_buf.iter()) {
                *v -= factor * pv;
            }
            z[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs the simplex method to optimality for the given cost vector
    /// (maximization), starting from the current basic feasible solution.
    ///
    /// With `bounded_objective`, the caller guarantees the objective is
    /// bounded above (true for phase 1, whose optimum is at most 0); an
    /// entering column without a valid ratio row is then floating-point
    /// noise in the reduced costs and is skipped rather than reported as
    /// unbounded.
    fn run(
        &mut self,
        cost: &[f64],
        bounded_objective: bool,
        z: &mut Vec<f64>,
        skipped: &mut Vec<bool>,
    ) -> RunResult {
        // Reduced-cost row: z[j] = c_B · B⁻¹ A_j − c_j.
        z.clear();
        z.extend(cost.iter().map(|c| -c));
        for i in 0..self.num_rows() {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                for (zj, rj) in z.iter_mut().zip(self.row(i)) {
                    *zj += cb * rj;
                }
            }
        }
        let bland_after = 200 + 20 * (self.num_rows() + self.ncols);
        let mut iter = 0usize;
        skipped.clear();
        skipped.resize(self.ncols, false);
        let mut any_skipped = false;
        loop {
            let use_bland = iter > bland_after;
            // Entering column: most negative reduced cost (Dantzig) or the
            // first negative one (Bland, termination-safe).
            let mut entering: Option<usize> = None;
            let mut best = -EPS;
            for (j, &zj) in z.iter().enumerate() {
                if zj < best && !skipped[j] {
                    entering = Some(j);
                    if use_bland {
                        break;
                    }
                    best = zj;
                }
            }
            let Some(e) = entering else {
                return RunResult::Optimal;
            };
            // Ratio test; ties broken by smallest basis index (Bland-compatible).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.num_rows() {
                let coeff = self.tab[i * self.ncols + e];
                if coeff > EPS {
                    let ratio = self.rhs[i] / coeff;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                if bounded_objective {
                    // Impossible ray for a bounded objective: reduced-cost
                    // noise. Exclude the column and continue.
                    skipped[e] = true;
                    any_skipped = true;
                    continue;
                }
                return RunResult::Unbounded;
            };
            // A pivot invalidates the noise exclusions (reduced costs are
            // recomputed implicitly through the eliminations).
            if any_skipped {
                skipped.fill(false);
                any_skipped = false;
            }
            self.pivot(r, e, z);
            iter += 1;
            assert!(
                iter < 1_000_000,
                "simplex failed to terminate (numerical issue)"
            );
        }
    }

    /// Current value of column `col` in the basic solution.
    fn column_value(&self, col: usize) -> f64 {
        self.basis
            .iter()
            .position(|&b| b == col)
            .map_or(0.0, |i| self.rhs[i])
    }
}

pub(crate) fn solve(problem: &LpProblem) -> LpOutcome {
    solve_staged(&problem.objective, |stage| {
        for con in &problem.constraints {
            stage.push_row(&con.a, con.b);
        }
    })
}

/// Solves `maximize objective · x` subject to the rows staged by `fill`,
/// using per-thread scratch memory (no steady-state allocation beyond the
/// returned solution).
pub(crate) fn solve_staged(objective: &[f64], fill: impl FnOnce(&mut RowStage)) -> LpOutcome {
    SCRATCH.with(|cell| {
        // Re-entrant callers (a `fill` that itself solves an LP) fall back
        // to fresh scratch; the hot paths never do this.
        match cell.try_borrow_mut() {
            Ok(mut scratch) => solve_in(&mut scratch, objective, fill),
            Err(_) => solve_in(&mut Scratch::default(), objective, fill),
        }
    })
}

fn solve_in(
    scratch: &mut Scratch,
    objective: &[f64],
    fill: impl FnOnce(&mut RowStage),
) -> LpOutcome {
    let n = objective.len();
    scratch.stage.clear();
    scratch.stage_rhs.clear();
    {
        let mut stage = RowStage {
            coeffs: &mut scratch.stage,
            rhs: &mut scratch.stage_rhs,
            num_vars: n,
        };
        fill(&mut stage);
    }
    let m = scratch.stage_rhs.len();

    // Trivial cases without constraints (or without variables).
    if m == 0 {
        return if objective.iter().all(|&c| c.abs() <= EPS) {
            LpOutcome::Optimal(LpSolution {
                x: vec![0.0; n],
                value: 0.0,
            })
        } else {
            LpOutcome::Unbounded
        };
    }
    if n == 0 {
        // Constraints read `0 ≤ b`.
        return if scratch.stage_rhs.iter().all(|&b| b >= -EPS) {
            LpOutcome::Optimal(LpSolution {
                x: vec![],
                value: 0.0,
            })
        } else {
            LpOutcome::Infeasible
        };
    }

    // Column layout: [u (n) | v (n) | slack (m) | artificial (n_art)].
    let slack0 = 2 * n;
    let art0 = slack0 + m;
    scratch.art_rows.clear();
    for (i, &b) in scratch.stage_rhs.iter().enumerate() {
        if b < 0.0 {
            scratch.art_rows.push(i);
        }
    }
    let n_art = scratch.art_rows.len();
    let ncols = art0 + n_art;

    scratch.tab.clear();
    scratch.tab.resize(m * ncols, 0.0);
    scratch.rhs.clear();
    scratch.basis.clear();
    for i in 0..m {
        let b = scratch.stage_rhs[i];
        let negate = b < 0.0;
        let sign = if negate { -1.0 } else { 1.0 };
        let row = &mut scratch.tab[i * ncols..(i + 1) * ncols];
        for (j, &aj) in scratch.stage[i * n..(i + 1) * n].iter().enumerate() {
            row[j] = sign * aj;
            row[n + j] = -sign * aj;
        }
        row[slack0 + i] = sign;
        scratch.rhs.push(sign * b);
        scratch.basis.push(slack0 + i);
    }
    for (k, &i) in scratch.art_rows.iter().enumerate() {
        scratch.tab[i * ncols + art0 + k] = 1.0;
        scratch.basis[i] = art0 + k;
    }

    let mut t = Tableau {
        tab: &mut scratch.tab,
        rhs: &mut scratch.rhs,
        basis: &mut scratch.basis,
        pivot_buf: &mut scratch.pivot_buf,
        ncols,
    };
    let z = &mut scratch.z;
    let skipped = &mut scratch.skipped;
    let cost = &mut scratch.cost;

    // Phase 1: drive artificials to zero.
    if n_art > 0 {
        cost.clear();
        cost.resize(ncols, 0.0);
        for c in cost.iter_mut().skip(art0) {
            *c = -1.0;
        }
        match t.run(cost, true, z, skipped) {
            RunResult::Unbounded => unreachable!("phase-1 objective is bounded above by 0"),
            RunResult::Optimal => {}
        }
        let art_sum: f64 = (art0..ncols).map(|c| t.column_value(c)).sum();
        if art_sum > FEAS_EPS {
            return LpOutcome::Infeasible;
        }
        // Drive any degenerate artificial out of the basis, or drop its row.
        let mut i = 0;
        while i < t.num_rows() {
            if t.basis[i] >= art0 {
                let col = (0..art0).find(|&j| t.tab[i * ncols + j].abs() > 1e-9);
                match col {
                    Some(j) => {
                        z.clear();
                        z.resize(ncols, 0.0);
                        t.pivot(i, j, z);
                        i += 1;
                    }
                    None => {
                        // Redundant row: remove it (move the last row in).
                        let last = t.num_rows() - 1;
                        if i != last {
                            let (head, tail) = t.tab.split_at_mut(last * ncols);
                            head[i * ncols..(i + 1) * ncols].copy_from_slice(&tail[..ncols]);
                        }
                        t.tab.truncate(last * ncols);
                        t.rhs.swap_remove(i);
                        t.basis.swap_remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
        // Remove artificial columns by compacting each row to `art0` wide.
        let rows = t.num_rows();
        for i in 0..rows {
            for j in 0..art0 {
                t.tab[i * art0 + j] = t.tab[i * ncols + j];
            }
        }
        t.tab.truncate(rows * art0);
        t.ncols = art0;
    }

    // Phase 2: the real objective over [u | v | slack].
    let ncols2 = t.ncols;
    cost.clear();
    cost.resize(ncols2, 0.0);
    for (j, &cj) in objective.iter().enumerate() {
        cost[j] = cj;
        cost[n + j] = -cj;
    }
    match t.run(cost, false, z, skipped) {
        RunResult::Unbounded => LpOutcome::Unbounded,
        RunResult::Optimal => {
            let mut x = vec![0.0; n];
            for (i, &b) in t.basis.iter().enumerate() {
                if b < n {
                    x[b] += t.rhs[i];
                } else if b < 2 * n {
                    x[b - n] -= t.rhs[i];
                }
            }
            let value = objective.iter().zip(&x).map(|(c, xi)| c * xi).sum();
            LpOutcome::Optimal(LpSolution { x, value })
        }
    }
}
