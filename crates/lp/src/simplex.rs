//! Two-phase dense simplex.
//!
//! Free decision variables are split into differences of non-negative
//! variables (`x = u − v`), one slack variable is added per inequality and
//! artificial variables are introduced for rows whose right-hand side is
//! negative. Phase 1 maximizes the negated sum of artificials; phase 2
//! maximizes the real objective. Pivoting uses Dantzig's rule with a
//! fallback to Bland's rule after a fixed iteration budget, which guarantees
//! termination on degenerate problems.

use crate::{LpOutcome, LpProblem, LpSolution, EPS};

/// Feasibility tolerance for the phase-1 optimum (looser than [`EPS`] to
/// absorb accumulated floating-point error over many pivots).
const FEAS_EPS: f64 = 1e-7;

/// Minimum acceptable magnitude for a pivot element.
const PIVOT_EPS: f64 = 1e-11;

struct Tableau {
    /// `rows[i][j]` — coefficient of column `j` in row `i` (`B⁻¹ A`).
    rows: Vec<Vec<f64>>,
    /// Right-hand sides (`B⁻¹ b`), kept non-negative.
    rhs: Vec<f64>,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    ncols: usize,
}

enum RunResult {
    Optimal,
    Unbounded,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize, z: &mut [f64]) {
        let pivot = self.rows[row][col];
        debug_assert!(pivot.abs() > PIVOT_EPS);
        let inv = 1.0 / pivot;
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        self.rhs[row] *= inv;
        // Re-borrow trick: split the pivot row out to eliminate from others.
        let pivot_row = std::mem::take(&mut self.rows[row]);
        let pivot_rhs = self.rhs[row];
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor.abs() > PIVOT_EPS {
                for (v, pv) in r.iter_mut().zip(&pivot_row) {
                    *v -= factor * pv;
                }
                r[col] = 0.0;
                self.rhs[i] -= factor * pivot_rhs;
                if self.rhs[i] < 0.0 && self.rhs[i] > -FEAS_EPS {
                    self.rhs[i] = 0.0;
                }
            }
        }
        let factor = z[col];
        if factor.abs() > PIVOT_EPS {
            for (v, pv) in z.iter_mut().zip(&pivot_row) {
                *v -= factor * pv;
            }
            z[col] = 0.0;
        }
        self.rows[row] = pivot_row;
        self.basis[row] = col;
    }

    /// Runs the simplex method to optimality for the given cost vector
    /// (maximization), starting from the current basic feasible solution.
    ///
    /// With `bounded_objective`, the caller guarantees the objective is
    /// bounded above (true for phase 1, whose optimum is at most 0); an
    /// entering column without a valid ratio row is then floating-point
    /// noise in the reduced costs and is skipped rather than reported as
    /// unbounded.
    fn run(&mut self, cost: &[f64], bounded_objective: bool) -> RunResult {
        // Reduced-cost row: z[j] = c_B · B⁻¹ A_j − c_j.
        let mut z: Vec<f64> = cost.iter().map(|c| -c).collect();
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = cost[b];
            if cb != 0.0 {
                for (zj, rj) in z.iter_mut().zip(&self.rows[i]) {
                    *zj += cb * rj;
                }
            }
        }
        let bland_after = 200 + 20 * (self.rows.len() + self.ncols);
        let mut iter = 0usize;
        let mut skipped: Vec<bool> = vec![false; self.ncols];
        loop {
            let use_bland = iter > bland_after;
            // Entering column: most negative reduced cost (Dantzig) or the
            // first negative one (Bland, termination-safe).
            let mut entering: Option<usize> = None;
            let mut best = -EPS;
            for (j, &zj) in z.iter().enumerate() {
                if zj < best && !skipped[j] {
                    entering = Some(j);
                    if use_bland {
                        break;
                    }
                    best = zj;
                }
            }
            let Some(e) = entering else {
                return RunResult::Optimal;
            };
            // Ratio test; ties broken by smallest basis index (Bland-compatible).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.rows.len() {
                let coeff = self.rows[i][e];
                if coeff > EPS {
                    let ratio = self.rhs[i] / coeff;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                if bounded_objective {
                    // Impossible ray for a bounded objective: reduced-cost
                    // noise. Exclude the column and continue.
                    skipped[e] = true;
                    continue;
                }
                return RunResult::Unbounded;
            };
            // A pivot invalidates the noise exclusions (reduced costs are
            // recomputed implicitly through the eliminations).
            if skipped.iter().any(|&s| s) {
                skipped.fill(false);
            }
            self.pivot(r, e, &mut z);
            iter += 1;
            assert!(
                iter < 1_000_000,
                "simplex failed to terminate (numerical issue)"
            );
        }
    }

    /// Current value of column `col` in the basic solution.
    fn column_value(&self, col: usize) -> f64 {
        self.basis
            .iter()
            .position(|&b| b == col)
            .map_or(0.0, |i| self.rhs[i])
    }
}

pub(crate) fn solve(problem: &LpProblem) -> LpOutcome {
    let n = problem.num_vars();
    let m = problem.constraints.len();

    // Trivial cases without constraints (or without variables).
    if m == 0 {
        return if problem.objective.iter().all(|&c| c.abs() <= EPS) {
            LpOutcome::Optimal(LpSolution {
                x: vec![0.0; n],
                value: 0.0,
            })
        } else {
            LpOutcome::Unbounded
        };
    }
    if n == 0 {
        // Constraints read `0 ≤ b`.
        return if problem.constraints.iter().all(|c| c.b >= -EPS) {
            LpOutcome::Optimal(LpSolution {
                x: vec![],
                value: 0.0,
            })
        } else {
            LpOutcome::Infeasible
        };
    }

    // Column layout: [u (n) | v (n) | slack (m) | artificial (n_art)].
    let slack0 = 2 * n;
    let art0 = slack0 + m;
    let mut art_rows: Vec<usize> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    for (i, con) in problem.constraints.iter().enumerate() {
        let negate = con.b < 0.0;
        let sign = if negate { -1.0 } else { 1.0 };
        let mut row = vec![0.0; art0];
        for (j, &aj) in con.a.iter().enumerate() {
            row[j] = sign * aj;
            row[n + j] = -sign * aj;
        }
        row[slack0 + i] = sign;
        rows.push(row);
        rhs.push(sign * con.b);
        if negate {
            art_rows.push(i);
        }
    }
    let n_art = art_rows.len();
    let ncols = art0 + n_art;
    let mut basis = vec![0usize; m];
    for row in rows.iter_mut() {
        row.resize(ncols, 0.0);
    }
    for (i, b) in basis.iter_mut().enumerate() {
        *b = slack0 + i;
    }
    for (k, &i) in art_rows.iter().enumerate() {
        rows[i][art0 + k] = 1.0;
        basis[i] = art0 + k;
    }

    let mut t = Tableau {
        rows,
        rhs,
        basis,
        ncols,
    };

    // Phase 1: drive artificials to zero.
    if n_art > 0 {
        let mut cost = vec![0.0; ncols];
        for c in cost.iter_mut().skip(art0) {
            *c = -1.0;
        }
        match t.run(&cost, true) {
            RunResult::Unbounded => unreachable!("phase-1 objective is bounded above by 0"),
            RunResult::Optimal => {}
        }
        let art_sum: f64 = (art0..ncols).map(|c| t.column_value(c)).sum();
        if art_sum > FEAS_EPS {
            return LpOutcome::Infeasible;
        }
        // Drive any degenerate artificial out of the basis, or drop its row.
        let mut i = 0;
        while i < t.rows.len() {
            if t.basis[i] >= art0 {
                let col = (0..art0).find(|&j| t.rows[i][j].abs() > 1e-9);
                match col {
                    Some(j) => {
                        let mut dummy = vec![0.0; t.ncols];
                        t.pivot(i, j, &mut dummy);
                        i += 1;
                    }
                    None => {
                        // Redundant row: remove it.
                        t.rows.swap_remove(i);
                        t.rhs.swap_remove(i);
                        t.basis.swap_remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
        // Remove artificial columns.
        for row in t.rows.iter_mut() {
            row.truncate(art0);
        }
        t.ncols = art0;
    }

    // Phase 2: the real objective over [u | v | slack].
    let mut cost = vec![0.0; t.ncols];
    for (j, &cj) in problem.objective.iter().enumerate() {
        cost[j] = cj;
        cost[n + j] = -cj;
    }
    match t.run(&cost, false) {
        RunResult::Unbounded => LpOutcome::Unbounded,
        RunResult::Optimal => {
            let mut x = vec![0.0; n];
            for (i, &b) in t.basis.iter().enumerate() {
                if b < n {
                    x[b] += t.rhs[i];
                } else if b < 2 * n {
                    x[b - n] -= t.rhs[i];
                }
            }
            let value = problem.objective.iter().zip(&x).map(|(c, xi)| c * xi).sum();
            LpOutcome::Optimal(LpSolution { x, value })
        }
    }
}
