//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random bounded LPs (a box plus random cutting planes
//! through it). The box guarantees boundedness, and the box centre is kept
//! feasible by construction, so every generated problem has a finite
//! optimum. We then check the simplex invariants:
//!  * the reported point satisfies every constraint,
//!  * the reported value equals `c · x`,
//!  * the value is at least as good as a coarse interior sample (a weak but
//!    solver-independent lower bound on the optimum).

use mpq_lp::{solve, Constraint, LpOutcome, LpProblem};
use proptest::prelude::*;

/// Builds a problem whose feasible set is a box `[-5, 5]^n` intersected with
/// random halfspaces shifted to keep the origin feasible.
fn bounded_problem(n: usize, objective: Vec<f64>, cuts: Vec<(Vec<f64>, f64)>) -> LpProblem {
    let mut constraints = Vec::new();
    for j in 0..n {
        let mut lo = vec![0.0; n];
        lo[j] = -1.0;
        constraints.push(Constraint::new(lo, 5.0));
        let mut hi = vec![0.0; n];
        hi[j] = 1.0;
        constraints.push(Constraint::new(hi, 5.0));
    }
    for (a, shift) in cuts {
        // a · 0 = 0 ≤ shift keeps the origin inside for shift ≥ 0.
        constraints.push(Constraint::new(a, shift));
    }
    LpProblem::new(objective, constraints)
}

fn coeff() -> impl Strategy<Value = f64> {
    (-10i32..=10).prop_map(|v| v as f64 / 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimum_is_feasible_and_consistent(
        n in 1usize..4,
        obj_raw in prop::collection::vec(coeff(), 4),
        cuts_raw in prop::collection::vec((prop::collection::vec(coeff(), 4), 0u32..40), 0..6),
    ) {
        let objective: Vec<f64> = obj_raw[..n].to_vec();
        let cuts: Vec<(Vec<f64>, f64)> = cuts_raw
            .iter()
            .map(|(a, s)| (a[..n].to_vec(), *s as f64 / 4.0))
            .collect();
        let problem = bounded_problem(n, objective.clone(), cuts);

        match solve(&problem) {
            LpOutcome::Optimal(sol) => {
                for c in &problem.constraints {
                    prop_assert!(c.slack(&sol.x) >= -1e-6,
                        "constraint {:?} violated at {:?}", c, sol.x);
                }
                let recomputed: f64 = objective.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
                prop_assert!((recomputed - sol.value).abs() < 1e-6);
                // The origin is always feasible, so the optimum is ≥ c·0 = 0.
                prop_assert!(sol.value >= -1e-6, "optimum {} below origin value", sol.value);
            }
            other => prop_assert!(false, "bounded feasible LP returned {other:?}"),
        }
    }

    #[test]
    fn infeasible_detection_is_sound(
        n in 1usize..4,
        a_raw in prop::collection::vec(coeff(), 4),
        gap in 1u32..20,
    ) {
        // a·x ≤ 0 together with a·x ≥ gap is infeasible whenever a ≠ 0.
        let a: Vec<f64> = a_raw[..n].to_vec();
        prop_assume!(a.iter().any(|&v| v != 0.0));
        let neg: Vec<f64> = a.iter().map(|v| -v).collect();
        let problem = LpProblem::feasibility(
            n,
            vec![
                Constraint::new(a, 0.0),
                Constraint::new(neg, -(gap as f64)),
            ],
        );
        prop_assert!(matches!(solve(&problem), LpOutcome::Infeasible));
    }

    #[test]
    fn duplicate_constraints_do_not_change_optimum(
        n in 1usize..4,
        obj_raw in prop::collection::vec(coeff(), 4),
    ) {
        let objective: Vec<f64> = obj_raw[..n].to_vec();
        let base = bounded_problem(n, objective.clone(), vec![]);
        let mut doubled = base.clone();
        doubled.constraints.extend(base.constraints.clone());
        let v1 = solve(&base).optimal().expect("base optimal").value;
        let v2 = solve(&doubled).optimal().expect("doubled optimal").value;
        prop_assert!((v1 - v2).abs() < 1e-6, "{v1} vs {v2}");
    }
}
