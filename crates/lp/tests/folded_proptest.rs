//! Bit-identity of the folded simplex against the unfolded reference.
//!
//! The folded tableau (see `src/simplex.rs`) promises more than verdict
//! agreement: every pivot decision scans the same logical columns over
//! bit-equal values, so outcomes must be **bitwise identical** to the
//! classic `[u | v | slack | artificial]` layout. This test keeps a
//! self-contained copy of the unfolded solver (the pre-fold
//! implementation, verbatim modulo scratch reuse, which does not affect
//! arithmetic) and asserts exact equality of outcome kind, solution
//! vector bits and objective-value bits on randomized problems —
//! including degenerate rows, negative right-hand sides (phase-1
//! activity), ties and near-parallel constraints.

use mpq_lp::{solve_staged, LpOutcome};
use proptest::prelude::*;

/// The unfolded two-phase simplex, kept verbatim as the reference.
mod reference {
    use mpq_lp::{LpOutcome, LpSolution, EPS};

    const FEAS_EPS: f64 = 1e-7;
    const PIVOT_EPS: f64 = 1e-11;

    enum RunResult {
        Optimal,
        Unbounded,
    }

    struct Tableau {
        tab: Vec<f64>,
        rhs: Vec<f64>,
        basis: Vec<usize>,
        pivot_buf: Vec<f64>,
        ncols: usize,
    }

    impl Tableau {
        fn num_rows(&self) -> usize {
            self.rhs.len()
        }

        fn row(&self, i: usize) -> &[f64] {
            &self.tab[i * self.ncols..(i + 1) * self.ncols]
        }

        fn pivot(&mut self, row: usize, col: usize, z: &mut [f64]) {
            let nc = self.ncols;
            let pivot = self.tab[row * nc + col];
            debug_assert!(pivot.abs() > PIVOT_EPS);
            let inv = 1.0 / pivot;
            for v in &mut self.tab[row * nc..(row + 1) * nc] {
                *v *= inv;
            }
            self.rhs[row] *= inv;
            self.pivot_buf.clear();
            self.pivot_buf
                .extend_from_slice(&self.tab[row * nc..(row + 1) * nc]);
            let pivot_rhs = self.rhs[row];
            for i in 0..self.num_rows() {
                if i == row {
                    continue;
                }
                let factor = self.tab[i * nc + col];
                if factor.abs() > PIVOT_EPS {
                    let r = &mut self.tab[i * nc..(i + 1) * nc];
                    for (v, pv) in r.iter_mut().zip(self.pivot_buf.iter()) {
                        *v -= factor * pv;
                    }
                    r[col] = 0.0;
                    self.rhs[i] -= factor * pivot_rhs;
                    if self.rhs[i] < 0.0 && self.rhs[i] > -FEAS_EPS {
                        self.rhs[i] = 0.0;
                    }
                }
            }
            let factor = z[col];
            if factor.abs() > PIVOT_EPS {
                for (v, pv) in z.iter_mut().zip(self.pivot_buf.iter()) {
                    *v -= factor * pv;
                }
                z[col] = 0.0;
            }
            self.basis[row] = col;
        }

        fn run(
            &mut self,
            cost: &[f64],
            bounded_objective: bool,
            z: &mut Vec<f64>,
            skipped: &mut Vec<bool>,
        ) -> RunResult {
            z.clear();
            z.extend(cost.iter().map(|c| -c));
            for i in 0..self.num_rows() {
                let cb = cost[self.basis[i]];
                if cb != 0.0 {
                    for (zj, rj) in z.iter_mut().zip(self.row(i)) {
                        *zj += cb * rj;
                    }
                }
            }
            let bland_after = 200 + 20 * (self.num_rows() + self.ncols);
            let mut iter = 0usize;
            skipped.clear();
            skipped.resize(self.ncols, false);
            let mut any_skipped = false;
            loop {
                let use_bland = iter > bland_after;
                let mut entering: Option<usize> = None;
                let mut best = -EPS;
                for (j, &zj) in z.iter().enumerate() {
                    if zj < best && !skipped[j] {
                        entering = Some(j);
                        if use_bland {
                            break;
                        }
                        best = zj;
                    }
                }
                let Some(e) = entering else {
                    return RunResult::Optimal;
                };
                let mut leave: Option<usize> = None;
                let mut best_ratio = f64::INFINITY;
                for i in 0..self.num_rows() {
                    let coeff = self.tab[i * self.ncols + e];
                    if coeff > EPS {
                        let ratio = self.rhs[i] / coeff;
                        let better = ratio < best_ratio - EPS
                            || (ratio < best_ratio + EPS
                                && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                        if better {
                            best_ratio = ratio;
                            leave = Some(i);
                        }
                    }
                }
                let Some(r) = leave else {
                    if bounded_objective {
                        skipped[e] = true;
                        any_skipped = true;
                        continue;
                    }
                    return RunResult::Unbounded;
                };
                if any_skipped {
                    skipped.fill(false);
                    any_skipped = false;
                }
                self.pivot(r, e, z);
                iter += 1;
                assert!(iter < 1_000_000, "reference simplex failed to terminate");
            }
        }

        fn column_value(&self, col: usize) -> f64 {
            self.basis
                .iter()
                .position(|&b| b == col)
                .map_or(0.0, |i| self.rhs[i])
        }
    }

    /// Solves with the unfolded `[u | v | slack | artificial]` layout.
    pub fn solve(objective: &[f64], rows: &[(Vec<f64>, f64)]) -> LpOutcome {
        let n = objective.len();
        let m = rows.len();
        if m == 0 {
            return if objective.iter().all(|&c| c.abs() <= EPS) {
                LpOutcome::Optimal(LpSolution {
                    x: vec![0.0; n],
                    value: 0.0,
                })
            } else {
                LpOutcome::Unbounded
            };
        }
        if n == 0 {
            return if rows.iter().all(|(_, b)| *b >= -EPS) {
                LpOutcome::Optimal(LpSolution {
                    x: vec![],
                    value: 0.0,
                })
            } else {
                LpOutcome::Infeasible
            };
        }
        let slack0 = 2 * n;
        let art0 = slack0 + m;
        let art_rows: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, (_, b))| *b < 0.0)
            .map(|(i, _)| i)
            .collect();
        let n_art = art_rows.len();
        let ncols = art0 + n_art;
        let mut t = Tableau {
            tab: vec![0.0; m * ncols],
            rhs: Vec::with_capacity(m),
            basis: Vec::with_capacity(m),
            pivot_buf: Vec::new(),
            ncols,
        };
        for (i, (a, b)) in rows.iter().enumerate() {
            let sign = if *b < 0.0 { -1.0 } else { 1.0 };
            let row = &mut t.tab[i * ncols..(i + 1) * ncols];
            for (j, &aj) in a.iter().enumerate() {
                row[j] = sign * aj;
                row[n + j] = -sign * aj;
            }
            row[slack0 + i] = sign;
            t.rhs.push(sign * b);
            t.basis.push(slack0 + i);
        }
        for (k, &i) in art_rows.iter().enumerate() {
            t.tab[i * ncols + art0 + k] = 1.0;
            t.basis[i] = art0 + k;
        }
        let mut z = Vec::new();
        let mut skipped = Vec::new();
        let mut cost = Vec::new();
        if n_art > 0 {
            cost.clear();
            cost.resize(ncols, 0.0);
            for c in cost.iter_mut().skip(art0) {
                *c = -1.0;
            }
            match t.run(&cost.clone(), true, &mut z, &mut skipped) {
                RunResult::Unbounded => unreachable!("phase-1 objective bounded"),
                RunResult::Optimal => {}
            }
            let art_sum: f64 = (art0..ncols).map(|c| t.column_value(c)).sum();
            if art_sum > FEAS_EPS {
                return LpOutcome::Infeasible;
            }
            let mut i = 0;
            while i < t.num_rows() {
                if t.basis[i] >= art0 {
                    let col = (0..art0).find(|&j| t.tab[i * ncols + j].abs() > 1e-9);
                    match col {
                        Some(j) => {
                            z.clear();
                            z.resize(ncols, 0.0);
                            t.pivot(i, j, &mut z);
                            i += 1;
                        }
                        None => {
                            let last = t.num_rows() - 1;
                            if i != last {
                                let (head, tail) = t.tab.split_at_mut(last * ncols);
                                head[i * ncols..(i + 1) * ncols].copy_from_slice(&tail[..ncols]);
                            }
                            t.tab.truncate(last * ncols);
                            t.rhs.swap_remove(i);
                            t.basis.swap_remove(i);
                        }
                    }
                } else {
                    i += 1;
                }
            }
            let rows_left = t.num_rows();
            for i in 0..rows_left {
                for j in 0..art0 {
                    t.tab[i * art0 + j] = t.tab[i * ncols + j];
                }
            }
            t.tab.truncate(rows_left * art0);
            t.ncols = art0;
        }
        let ncols2 = t.ncols;
        cost.clear();
        cost.resize(ncols2, 0.0);
        for (j, &cj) in objective.iter().enumerate() {
            cost[j] = cj;
            cost[n + j] = -cj;
        }
        match t.run(&cost.clone(), false, &mut z, &mut skipped) {
            RunResult::Unbounded => LpOutcome::Unbounded,
            RunResult::Optimal => {
                let mut x = vec![0.0; n];
                for (i, &b) in t.basis.iter().enumerate() {
                    if b < n {
                        x[b] += t.rhs[i];
                    } else if b < 2 * n {
                        x[b - n] -= t.rhs[i];
                    }
                }
                let value = objective.iter().zip(&x).map(|(c, xi)| c * xi).sum();
                LpOutcome::Optimal(LpSolution { x, value })
            }
        }
    }
}

/// A coefficient pool that exercises ties, exact negations, degenerate
/// zero rows and awkward magnitudes.
fn coeff() -> impl Strategy<Value = f64> {
    (0usize..12, -4.0..4.0f64).prop_map(|(k, r)| match k {
        0 => 0.0,
        1 => 1.0,
        2 => -1.0,
        3 => 0.5,
        4 => -0.5,
        5 => 2.0,
        6 => -3.0,
        7 => 1e-7,
        8 => -1e-7,
        9 => 0.7071067811865475,
        10 => -0.7071067811865475,
        _ => r,
    })
}

fn assert_bit_identical(objective: &[f64], rows: &[(Vec<f64>, f64)]) -> Result<(), TestCaseError> {
    let folded = solve_staged(objective, |stage| {
        for (a, b) in rows {
            stage.push_row(a, *b);
        }
    });
    let unfolded = reference::solve(objective, rows);
    match (&folded, &unfolded) {
        (LpOutcome::Optimal(f), LpOutcome::Optimal(r)) => {
            prop_assert_eq!(
                f.value.to_bits(),
                r.value.to_bits(),
                "objective value bits diverged: {} vs {}",
                f.value,
                r.value
            );
            prop_assert_eq!(f.x.len(), r.x.len());
            for (i, (a, b)) in f.x.iter().zip(&r.x).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "x[{}] bits diverged: {} vs {}",
                    i,
                    a,
                    b
                );
            }
        }
        (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
        (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
        _ => prop_assert!(
            false,
            "outcome kind diverged: folded {:?} vs reference {:?}",
            folded,
            unfolded
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn folded_simplex_is_bit_identical_to_unfolded(
        n in 1usize..=4,
        rows in prop::collection::vec((prop::collection::vec(coeff(), 4), coeff()), 0..10),
    ) {
        let objective_pool = [1.0, -1.0, 0.5, -2.0, 0.0, 0.7071067811865475];
        // Derive the objective deterministically from the row data so the
        // case space stays wide without another generator dimension.
        let objective: Vec<f64> = (0..n)
            .map(|j| objective_pool[(rows.len() + j) % objective_pool.len()])
            .collect();
        let rows: Vec<(Vec<f64>, f64)> = rows
            .into_iter()
            .map(|(a, b)| (a[..n].to_vec(), b))
            .collect();
        assert_bit_identical(&objective, &rows)?;
    }

    #[test]
    fn folded_simplex_bit_identical_on_geometry_shaped_problems(
        lo in -1.0..0.5f64,
        width in 0.0..2.0f64,
        cuts in prop::collection::vec((coeff(), coeff(), coeff()), 0..6),
    ) {
        // Box rows plus arbitrary cuts — the shape every geometry
        // predicate stages (including exact-tie and negative-rhs rows).
        let mut rows: Vec<(Vec<f64>, f64)> = vec![
            (vec![1.0, 0.0], lo + width),
            (vec![-1.0, 0.0], -lo),
            (vec![0.0, 1.0], lo + width),
            (vec![0.0, -1.0], -lo),
        ];
        for (a0, a1, b) in cuts {
            rows.push((vec![a0, a1], b));
        }
        for objective in [[1.0, 1.0], [-1.0, 0.5], [0.0, -1.0]] {
            assert_bit_identical(&objective, &rows)?;
        }
    }
}
