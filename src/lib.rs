//! # mpq — Multi-Objective Parametric Query Optimization
//!
//! A from-scratch Rust implementation of *Multi-Objective Parametric Query
//! Optimization* (Immanuel Trummer and Christoph Koch, VLDB 2014),
//! including every substrate the algorithms need: an LP solver, convex
//! polytope geometry, piecewise-linear cost-function algebra, a
//! catalog/workload model, the paper's Cloud cost model, baselines, and a
//! benchmark harness that regenerates the paper's tables and figures.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`lp`] | `mpq-lp` | dense two-phase simplex, LP counters |
//! | [`geometry`] | `mpq-geometry` | polytopes, union convexity (BFT), parameter grids |
//! | [`cost`] | `mpq-cost` | linear/PWL/multi-objective cost functions, dominance |
//! | [`catalog`] | `mpq-catalog` | tables, queries, join graphs, workload generator |
//! | [`cloud`] | `mpq-cloud` | cost models: time × fees and time × precision-loss |
//! | [`core`] | `mpq-core` | RRPA, PWL-RRPA, spaces, baselines, validation |
//! | [`service`] | `mpq-service` | optimizer service: batch accumulation, sharded sessions, tickets |
//! | [`net`] | `mpq-net` | networked shard fabric: versioned wire format, shard servers, retrying router |
//! | [`obs`] | `mpq-obs` | deterministic observability: metrics registry, log-bucketed histograms, spans |
//!
//! ## Quick start
//!
//! ```
//! use mpq::prelude::*;
//! use mpq::catalog::generator::{generate, GeneratorConfig};
//! use mpq::catalog::graph::Topology;
//! use mpq::cloud::model::CloudCostModel;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A random 4-table chain query with one selectivity parameter.
//! let cfg = GeneratorConfig::paper(4, Topology::Chain, 1);
//! let query = generate(&cfg, &mut StdRng::seed_from_u64(42));
//!
//! // Optimize once, before run time: all Pareto-optimal plans for every
//! // possible selectivity.
//! let model = CloudCostModel::default();
//! let config = OptimizerConfig::default_for(query.num_params);
//! let space = GridSpace::for_unit_box(query.num_params, &config, 2).unwrap();
//! let solution = optimize(&query, &model, &space, &config);
//!
//! // At run time: the user's predicate arrives (selectivity 0.4); show the
//! // time/fees trade-offs and pick the fastest plan within a fee budget.
//! let frontier = solution.frontier_at(&space, &[0.4]);
//! assert!(!frontier.is_empty());
//! let plan = solution.select_plan(&space, &[0.4], 0, &[None, Some(1.0)]);
//! assert!(plan.is_some());
//! ```

pub use mpq_catalog as catalog;
pub use mpq_cloud as cloud;
pub use mpq_core as core;
pub use mpq_cost as cost;
pub use mpq_geometry as geometry;
pub use mpq_lp as lp;
pub use mpq_net as net;
pub use mpq_obs as obs;
pub use mpq_service as service;

/// The commonly used API surface (re-export of [`mpq_core::prelude`]).
pub mod prelude {
    pub use mpq_core::prelude::*;
}
