//! The *generic* RRPA (Section 5 of the paper) on genuinely non-linear
//! cost functions.
//!
//! RRPA itself places no restriction on the shape of cost functions — only
//! its PWL specialisation does. This example runs the same optimizer on a
//! [`SampledSpace`], where costs are represented exactly at a finite
//! sample of the parameter space, with a cost model whose formulas are
//! non-linear in the parameter (quadratic cache effects and a
//! contention term), and cross-checks the result against the PWL grid
//! space.
//!
//! Run with: `cargo run --release --example generic_nonlinear`

use mpq::catalog::{JoinEdge, Predicate, Query, Selectivity, Table, TableSet};
use mpq::cloud::model::{CostClosure, JoinAlternative, ParametricCostModel, ScanAlternative};
use mpq::cloud::ops::{JoinOp, ScanOp};
use mpq::prelude::*;

/// A deliberately non-linear two-metric cost model: time includes a
/// quadratic "cache-miss" term in the input size; a contention metric
/// grows with the square root of parallelism-induced traffic.
struct NonlinearModel;

fn scan_cost(rows: f64) -> Vec<f64> {
    vec![rows * 1e-6 + (rows * 1e-6).powi(2) * 0.05, rows * 2e-7]
}

impl ParametricCostModel for NonlinearModel {
    fn num_metrics(&self) -> usize {
        2
    }

    fn metric_names(&self) -> Vec<&'static str> {
        vec!["time (s)", "contention"]
    }

    fn scan_alternatives(&self, query: &Query, table: usize) -> Vec<ScanAlternative> {
        let rows = query.tables[table].rows;
        let matching = query.base_card(table);
        let table_scan: CostClosure = Box::new(move |_x: &[f64]| scan_cost(rows));
        let mut out = vec![ScanAlternative {
            op: ScanOp::TableScan,
            cost: table_scan,
            shape: None, // demo model: opt out of the lifting cache
        }];
        if query.predicates_on(table).next().is_some() {
            out.push(ScanAlternative {
                op: ScanOp::IndexSeek,
                shape: None,
                cost: Box::new(move |x| {
                    let m = matching.eval(x);
                    // Non-linear: per-row cost grows as the index degrades.
                    vec![m * 4e-6 * (1.0 + (m / 5e4).sqrt()), m * 1e-7]
                }),
            });
        }
        out
    }

    fn join_alternatives(
        &self,
        query: &Query,
        left: TableSet,
        right: TableSet,
    ) -> Vec<JoinAlternative> {
        let build = query.join_card(left);
        let probe = query.join_card(right);
        vec![
            JoinAlternative {
                op: JoinOp::SingleNodeHash,
                shape: None,
                cost: Box::new(move |x| {
                    let (b, p) = (build.eval(x), probe.eval(x));
                    let work = b * 1e-6 + p * 5e-7;
                    vec![work + work * work * 0.01, work * 0.2]
                }),
            },
            JoinAlternative {
                op: JoinOp::ParallelHash,
                shape: None,
                cost: Box::new(move |x| {
                    let (b, p) = (build.eval(x), probe.eval(x));
                    let work = b * 1e-6 + p * 5e-7;
                    // Faster, but contention rises with sqrt of traffic.
                    vec![work / 8.0 + 0.02, work * 0.2 + (work).sqrt() * 0.05]
                }),
            },
        ]
    }
}

fn query() -> Query {
    Query {
        tables: vec![
            Table {
                name: "R".into(),
                rows: 60_000.0,
                row_bytes: 100.0,
            },
            Table {
                name: "S".into(),
                rows: 40_000.0,
                row_bytes: 100.0,
            },
            Table {
                name: "T".into(),
                rows: 90_000.0,
                row_bytes: 100.0,
            },
        ],
        predicates: vec![Predicate {
            table: 0,
            selectivity: Selectivity::Param(0),
        }],
        joins: vec![
            JoinEdge {
                t1: 0,
                t2: 1,
                selectivity: 1e-4,
            },
            JoinEdge {
                t1: 1,
                t2: 2,
                selectivity: 5e-5,
            },
        ],
        num_params: 1,
    }
}

fn main() {
    let query = query();
    let model = NonlinearModel;
    let config = OptimizerConfig::default_for(query.num_params);

    // Generic RRPA: exact at 33 sample points, no LPs at all.
    let sampled = SampledSpace::lattice(&[0.0], &[1.0], 33, 2);
    let sol_generic = optimize(&query, &model, &sampled, &config);
    println!(
        "generic RRPA (sampled space): {} plans, {}",
        sol_generic.plans.len(),
        sol_generic.stats.summary()
    );

    // PWL-RRPA: the same non-linear closures approximated on the grid.
    let grid =
        GridSpace::for_unit_box(query.num_params, &config, 2).expect("valid grid configuration");
    let sol_pwl = optimize(&query, &model, &grid, &config);
    println!(
        "PWL-RRPA (grid space):        {} plans, {}",
        sol_pwl.plans.len(),
        sol_pwl.stats.summary()
    );

    // Compare frontiers at a few points: the PWL frontier must be within
    // approximation error of the exact (sampled) one.
    println!("\nfrontier comparison (time metric of the fastest plan):");
    for xv in [0.125, 0.5, 0.875] {
        let x = [xv];
        let best = |frontier: &[(mpq::core::plan::PlanId, Vec<f64>)]| {
            frontier
                .iter()
                .map(|(_, c)| c[0])
                .fold(f64::INFINITY, f64::min)
        };
        let generic = best(&sol_generic.frontier_at(&sampled, &x));
        let pwl = best(&sol_pwl.frontier_at(&grid, &x));
        let err = ((pwl - generic) / generic * 100.0).abs();
        println!("  sel {xv:5.3}: exact {generic:.5} s vs PWL {pwl:.5} s  ({err:.2}% apart)");
    }
    println!(
        "\nThe generic algorithm handles arbitrary cost functions exactly on\n\
         its sample; the PWL specialisation approximates them with piecewise\n\
         interpolation (error shrinks with grid resolution)."
    );
}
