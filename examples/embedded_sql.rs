//! Scenario 2 of the paper: embedded SQL with approximate query
//! processing — execution time traded against **result precision**.
//!
//! Embedded queries are optimized once at compile time; at run time the
//! concrete parameter values *and a policy* (e.g. a minimum-precision
//! requirement that depends on system load) select the plan. Precision is
//! a quality (higher is better), so it is modelled as *precision loss*
//! per Section 2 of the paper.
//!
//! Run with: `cargo run --release --example embedded_sql`

use mpq::catalog::generator::{generate, GeneratorConfig};
use mpq::catalog::graph::Topology;
use mpq::cloud::approx_model::{ApproxCostModel, METRIC_LOSS};
use mpq::cloud::METRIC_TIME;
use mpq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The embedded query template: 3 tables, one run-time predicate.
    let mut query = generate(
        &GeneratorConfig::paper(3, Topology::Chain, 1),
        &mut StdRng::seed_from_u64(3),
    );
    for t in &mut query.tables {
        t.rows = t.rows.max(60_000.0);
    }

    // Compile time: optimize with time and precision-loss metrics. The
    // model offers exact scans and sampled scans at several rates.
    let model = ApproxCostModel::default();
    let config = OptimizerConfig::default_for(query.num_params);
    let space =
        GridSpace::for_unit_box(query.num_params, &config, 2).expect("valid grid configuration");
    let solution = optimize(&query, &model, &space, &config);
    println!(
        "compile-time optimization: {} plans retained ({})",
        solution.plans.len(),
        solution.stats.summary()
    );

    // Run time: the parameter value arrives together with a policy.
    let x = [0.6];
    println!(
        "\nPareto frontier at selectivity {} (time vs precision loss):",
        x[0]
    );
    let mut frontier = solution.frontier_at(&space, &x);
    frontier.sort_by(|(_, a), (_, b)| a[METRIC_TIME].partial_cmp(&b[METRIC_TIME]).expect("finite"));
    for (plan, cost) in &frontier {
        println!(
            "  {:8.3} s  loss {:4.2}  {}",
            cost[METRIC_TIME],
            cost[METRIC_LOSS],
            solution.arena.display(*plan, &query)
        );
    }

    // Policy A: an interactive dashboard under heavy load — answer fast,
    // tolerate up to 1.5 units of precision loss.
    println!("\npolicy A (dashboard, loss <= 1.5):");
    match solution.select_plan(&space, &x, METRIC_TIME, &[None, Some(1.5)]) {
        Some((plan, cost)) => println!(
            "  -> {} ({:.3} s, loss {:.2})",
            solution.arena.display(plan, &query),
            cost[METRIC_TIME],
            cost[METRIC_LOSS]
        ),
        None => println!("  -> no plan satisfies the policy"),
    }

    // Policy B: a monthly report — exact answers only (zero loss), take
    // whatever time it needs.
    println!("policy B (report, loss = 0):");
    match solution.select_plan(&space, &x, METRIC_TIME, &[None, Some(0.0)]) {
        Some((plan, cost)) => println!(
            "  -> {} ({:.3} s, loss {:.2})",
            solution.arena.display(plan, &query),
            cost[METRIC_TIME],
            cost[METRIC_LOSS]
        ),
        None => println!("  -> no plan satisfies the policy"),
    }

    // Policy C: minimize loss under a latency SLO.
    let slo = frontier
        .first()
        .map(|(_, c)| c[METRIC_TIME] * 2.0)
        .unwrap_or(1.0);
    println!("policy C (SLO, time <= {slo:.3} s, minimal loss):");
    match solution.select_plan(&space, &x, METRIC_LOSS, &[Some(slo), None]) {
        Some((plan, cost)) => println!(
            "  -> {} ({:.3} s, loss {:.2})",
            solution.arena.display(plan, &query),
            cost[METRIC_TIME],
            cost[METRIC_LOSS]
        ),
        None => println!("  -> no plan satisfies the policy"),
    }
}
