//! Quickstart: optimize a small query once, select plans at run time.
//!
//! Reproduces the paper's workflow (Figure 2): MPQ runs **before** run
//! time and produces a Pareto plan set; at run time, concrete parameter
//! values arrive and a plan is picked from the precomputed set with no
//! further optimization. Also reproduces the Figure 7 pruning story on a
//! real two-table join: the single-node hash join is better on both
//! metrics at low selectivity, so the parallel join's relevance region is
//! an upper selectivity interval.
//!
//! Run with: `cargo run --release --example quickstart`

use mpq::catalog::generator::{generate, GeneratorConfig};
use mpq::catalog::graph::Topology;
use mpq::cloud::model::CloudCostModel;
use mpq::cloud::{METRIC_FEES, METRIC_TIME};
use mpq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Preprocessing time -------------------------------------------
    // A 3-table chain query; the predicate selectivity on one table is a
    // parameter in [0, 1], unknown until the user submits a value.
    let mut query = generate(
        &GeneratorConfig::paper(3, Topology::Chain, 1),
        &mut StdRng::seed_from_u64(7),
    );
    // Enlarge the tables so a genuine time/fees trade-off appears.
    for t in &mut query.tables {
        t.rows = 80_000.0;
    }
    println!(
        "Query: {} tables, {} parameter(s)",
        query.num_tables(),
        query.num_params
    );
    for t in &query.tables {
        println!("  {}: {:.0} rows x {:.0} B", t.name, t.rows, t.row_bytes);
    }

    let model = CloudCostModel::default();
    let config = OptimizerConfig::default_for(query.num_params);
    let space =
        GridSpace::for_unit_box(query.num_params, &config, 2).expect("valid grid configuration");
    let solution = optimize(&query, &model, &space, &config);

    println!("\nOptimization: {}", solution.stats.summary());
    println!(
        "Pareto plan set: {} plan(s) cover every selectivity in [0, 1]",
        solution.plans.len()
    );
    for p in &solution.plans {
        println!("  - {}", solution.arena.display(p.plan, &query));
    }

    // --- Run time ------------------------------------------------------
    // The user submits a predicate; its selectivity becomes known.
    for selectivity in [0.05, 0.5, 0.95] {
        let x = [selectivity];
        println!("\nAt selectivity {selectivity}: time/fees trade-offs");
        let mut frontier = solution.frontier_at(&space, &x);
        frontier
            .sort_by(|(_, a), (_, b)| a[METRIC_TIME].partial_cmp(&b[METRIC_TIME]).expect("finite"));
        for (plan, cost) in &frontier {
            println!(
                "  {:8.3} s  {:10.6} USD  {}",
                cost[METRIC_TIME],
                cost[METRIC_FEES],
                solution.arena.display(*plan, &query)
            );
        }
        // Pick the fastest plan within a fee budget: halfway between the
        // cheapest and the priciest frontier plan at this point.
        let (fmin, fmax) = frontier
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), (_, c)| {
                (lo.min(c[METRIC_FEES]), hi.max(c[METRIC_FEES]))
            });
        let budget = (fmin + fmax) / 2.0;
        match solution.select_plan(&space, &x, METRIC_TIME, &[None, Some(budget)]) {
            Some((plan, cost)) => println!(
                "  fastest under {budget:.6} USD: {} ({:.3} s, {:.6} USD)",
                solution.arena.display(plan, &query),
                cost[METRIC_TIME],
                cost[METRIC_FEES]
            ),
            None => println!("  no plan fits the {budget:.6} USD budget"),
        }
    }
}
