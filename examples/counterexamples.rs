//! The paper's problem analysis (Section 4, Table 1, Figures 4–6),
//! executed on the real cost-function machinery.
//!
//! The paper proves that the "guiding principles" of single-metric
//! parametric optimization (S1–S3) fail with multiple metrics (M1–M3) via
//! three counterexamples. This example rebuilds each counterexample with
//! explicit PWL cost functions and *computes* the Pareto-plan tables the
//! figures show — demonstrating why parameter-space-decomposition PQ
//! algorithms cannot be lifted to MPQ, and why RRPA exists.
//!
//! Run with: `cargo run --release --example counterexamples`

use mpq::cost::{LinearFn, LinearPiece, MultiCostFn, PwlFn};
use mpq::geometry::Polytope;

fn interval(lo: f64, hi: f64) -> Polytope {
    Polytope::from_box(&[lo], &[hi])
}

fn linear(region: Polytope, w: f64, b: f64) -> PwlFn {
    PwlFn::from_linear(region, LinearFn::new(vec![w], b))
}

/// A 1-D PWL function assembled from `(lo, hi, w, b)` pieces.
fn pwl(pieces: &[(f64, f64, f64, f64)]) -> PwlFn {
    PwlFn::new(
        1,
        pieces
            .iter()
            .map(|&(lo, hi, w, b)| LinearPiece {
                region: std::sync::Arc::new(interval(lo, hi)),
                f: LinearFn::new(vec![w], b),
            })
            .collect(),
    )
}

/// Names of the Pareto-optimal plans at `x` (strict-domination filter, the
/// paper's Pareto-region definition).
fn pareto_at(plans: &[(&str, &MultiCostFn)], x: &[f64]) -> Vec<String> {
    let costs: Vec<Vec<f64>> = plans
        .iter()
        .map(|(_, f)| f.eval(x).expect("inside domain"))
        .collect();
    plans
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            !costs
                .iter()
                .any(|other| mpq::cost::strictly_dominates(other, &costs[*i], 1e-9))
        })
        .map(|(_, (name, _))| (*name).to_string())
        .collect()
}

fn show_table(plans: &[(&str, &MultiCostFn)], ranges: &[(f64, f64)]) {
    println!(
        "  {:<16} Pareto plans (computed at range midpoint)",
        "range"
    );
    for &(lo, hi) in ranges {
        let mid = [(lo + hi) / 2.0];
        println!(
            "  [{lo:>4.2}, {hi:>4.2}]    {}",
            pareto_at(plans, &mid).join(", ")
        );
    }
}

/// Figure 4 — statements M1 and M3a: a plan Pareto-optimal at two points
/// need not be Pareto-optimal on the segment between them.
fn figure4() {
    // Plan 1: metric 1 falls 2→0 over [0,2] then stays 0; metric 2 = 0.25.
    // Plan 2: metric 1 = 1; metric 2 jumps 0.5 / 2.0 / 0.1 per range
    //         (PWL functions may be discontinuous — paper Section 2).
    let x = interval(0.0, 3.0);
    let plan1 = MultiCostFn::new(vec![
        pwl(&[(0.0, 2.0, -1.0, 2.0), (2.0, 3.0, 0.0, 0.0)]),
        linear(x.clone(), 0.0, 0.25),
    ]);
    let plan2 = MultiCostFn::new(vec![
        linear(x, 0.0, 1.0),
        pwl(&[
            (0.0, 1.0, 0.0, 0.5),
            (1.0, 2.0, 0.0, 2.0),
            (2.0, 3.0, 0.0, 0.1),
        ]),
    ]);
    println!("== Figure 4 / statements M1 and M3a ==");
    show_table(
        &[("Plan 1", &plan1), ("Plan 2", &plan2)],
        &[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)],
    );
    assert_eq!(pareto_at(&[("1", &plan1), ("2", &plan2)], &[0.5]).len(), 2);
    assert_eq!(
        pareto_at(&[("1", &plan1), ("2", &plan2)], &[1.5]),
        vec!["1"]
    );
    assert_eq!(pareto_at(&[("1", &plan1), ("2", &plan2)], &[2.5]).len(), 2);
    println!(
        "  -> Plan 2 is Pareto-optimal on the outer ranges but NOT between\n\
         \u{20}    them: Pareto-optimality at two points does not extend to the\n\
         \u{20}    connecting segment (S1 fails; M1 and M3a hold).\n"
    );
}

/// Figure 5 — statement M2: Pareto regions need not be convex.
fn figure5() {
    // Plan 1 costs (x1, x2); plan 2 costs (1, 1) on [0,2]².
    let square = Polytope::from_box(&[0.0, 0.0], &[2.0, 2.0]);
    let plan1 = MultiCostFn::new(vec![
        PwlFn::from_linear(square.clone(), LinearFn::new(vec![1.0, 0.0], 0.0)),
        PwlFn::from_linear(square.clone(), LinearFn::new(vec![0.0, 1.0], 0.0)),
    ]);
    let plan2 = MultiCostFn::new(vec![
        PwlFn::from_linear(square.clone(), LinearFn::new(vec![0.0, 0.0], 1.0)),
        PwlFn::from_linear(square, LinearFn::new(vec![0.0, 0.0], 1.0)),
    ]);
    let ctx = mpq::lp::LpCtx::new();
    let dom = plan1.dominance_regions(&plan2, &ctx);
    let unit = Polytope::from_box(&[0.0, 0.0], &[1.0, 1.0]);
    println!("== Figure 5 / statement M2 ==");
    println!(
        "  Dom(plan 1, plan 2) computed symbolically; equals [0,1]^2: {}",
        mpq::geometry::union_covers(&ctx, &dom, &unit)
            && dom.iter().all(|r| unit.contains_polytope(&ctx, r))
    );
    // Convexity probe of plan 2's Pareto region (the complement of the
    // unit square within [0,2]²): two member points whose midpoint is not
    // a member.
    let member = |p: &[f64]| !dom.iter().any(|r| r.strictly_contains_point(p));
    let (a, b, mid) = ([1.5, 0.1], [0.1, 1.5], [0.8, 0.8]);
    println!(
        "  {a:?} in Pareto region: {}; {b:?} in Pareto region: {}; their\n\
         \u{20}   midpoint {mid:?} in Pareto region: {}",
        member(&a),
        member(&b),
        member(&mid)
    );
    assert!(member(&a) && member(&b) && !member(&mid));
    println!("  -> the Pareto region of plan 2 is NOT convex (S2 fails; M2 holds).\n");
}

/// Figure 6 — statement M3b: a plan can be Pareto-optimal strictly inside
/// a polytope while being Pareto-optimal at none of its vertices.
fn figure6() {
    let x = interval(0.0, 2.0);
    // Plan 1: (2−σ, σ); plan 2: (σ, 2−σ);
    // plan 3: metric 1 dips to 0.3 at σ = 1 (tent 0.3 + 0.4·|σ−1|),
    //         metric 2 is a high constant 2.0.
    let plan1 = MultiCostFn::new(vec![
        linear(x.clone(), -1.0, 2.0),
        linear(x.clone(), 1.0, 0.0),
    ]);
    let plan2 = MultiCostFn::new(vec![
        linear(x.clone(), 1.0, 0.0),
        linear(x.clone(), -1.0, 2.0),
    ]);
    let plan3 = MultiCostFn::new(vec![
        pwl(&[(0.0, 1.0, -0.4, 0.7), (1.0, 2.0, 0.4, -0.1)]),
        linear(x, 0.0, 2.0),
    ]);
    println!("== Figure 6 / statement M3b ==");
    let plans = [("Plan 1", &plan1), ("Plan 2", &plan2), ("Plan 3", &plan3)];
    show_table(&plans, &[(0.0, 0.5), (0.5, 1.5), (1.5, 2.0)]);
    assert_eq!(pareto_at(&plans, &[0.25]).len(), 2);
    assert_eq!(pareto_at(&plans, &[1.0]).len(), 3);
    assert_eq!(pareto_at(&plans, &[1.75]).len(), 2);
    println!(
        "  -> Plan 3 is Pareto-optimal strictly inside (0.5, 1.5) but at\n\
         \u{20}    neither end: even if all vertices of a polytope agree on their\n\
         \u{20}    Pareto set, new Pareto plans can appear inside (M3b). This\n\
         \u{20}    breaks the termination test of vertex-recursive PQ algorithms\n\
         \u{20}    (Hulgeri & Sudarshan's recursive decomposition), so MPQ needs\n\
         \u{20}    a different algorithm — relevance-region pruning.\n"
    );
}

fn main() {
    println!("Trummer & Koch, VLDB 2014 — Section 4 counterexamples, executed.\n");
    figure4();
    figure5();
    figure6();
    println!(
        "Summary (Table 1): S1–S3 hold for one metric; their multi-metric\n\
         analogues M1–M3 fail, motivating relevance-region pruning (RRPA)."
    );
}
