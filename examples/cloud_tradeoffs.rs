//! Scenario 1 of the paper: a Cloud provider precomputes all relevant
//! plans for a query template with unspecified predicates, then shows each
//! user the time/fees trade-offs for *their* predicates (Figure 1).
//!
//! The query template has **two** parametric predicates, so the parameter
//! space is the unit square `[0, 1]²`. We optimize once, then visualise the
//! Pareto frontier (an ASCII rendition of Figure 1b/1c) at two different
//! parameter points, demonstrating that the frontier — and the plans on it
//! — changes with the parameters.
//!
//! Run with: `cargo run --release --example cloud_tradeoffs`

use mpq::catalog::generator::{generate, GeneratorConfig};
use mpq::catalog::graph::Topology;
use mpq::cloud::model::CloudCostModel;
use mpq::cloud::{METRIC_FEES, METRIC_TIME};
use mpq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Renders a frontier as a small ASCII scatter plot (time on x, fees on y).
fn plot(frontier: &[(mpq::core::plan::PlanId, Vec<f64>)]) {
    const W: usize = 48;
    const H: usize = 12;
    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut fmin, mut fmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, c) in frontier {
        tmin = tmin.min(c[METRIC_TIME]);
        tmax = tmax.max(c[METRIC_TIME]);
        fmin = fmin.min(c[METRIC_FEES]);
        fmax = fmax.max(c[METRIC_FEES]);
    }
    let trange = (tmax - tmin).max(1e-12);
    let frange = (fmax - fmin).max(1e-12);
    let mut canvas = vec![vec![b' '; W]; H];
    for (i, (_, c)) in frontier.iter().enumerate() {
        let col = (((c[METRIC_TIME] - tmin) / trange) * (W - 1) as f64).round() as usize;
        let row = (((c[METRIC_FEES] - fmin) / frange) * (H - 1) as f64).round() as usize;
        let glyph = if i < 9 { b'1' + i as u8 } else { b'*' };
        canvas[H - 1 - row][col] = glyph;
    }
    println!("    fees {fmax:.6} USD");
    for row in canvas {
        println!("    |{}", String::from_utf8_lossy(&row));
    }
    println!("    +{}", "-".repeat(W));
    println!("     time: {tmin:.3} s .. {tmax:.3} s");
}

fn main() {
    // The provider's query template: 4 tables, predicates P1 and P2 on two
    // of them with unknown selectivities (the Web-form inputs).
    let mut query = generate(
        &GeneratorConfig::paper(4, Topology::Star, 2),
        &mut StdRng::seed_from_u64(19),
    );
    for t in &mut query.tables {
        t.rows = t.rows.max(40_000.0);
    }

    println!("== Preprocessing (provider side) ==");
    let model = CloudCostModel::default();
    let config = OptimizerConfig::default_for(query.num_params);
    let space =
        GridSpace::for_unit_box(query.num_params, &config, 2).expect("valid grid configuration");
    let solution = optimize(&query, &model, &space, &config);
    println!(
        "precomputed {} Pareto plans over the unit square ({})",
        solution.plans.len(),
        solution.stats.summary()
    );

    // Two users submit different predicates (Figure 1b vs 1c).
    for (label, x) in [
        ("x1 = (0.15, 0.30)", [0.15, 0.30]),
        ("x2 = (0.85, 0.70)", [0.85, 0.70]),
    ] {
        println!("\n== User query at {label} ==");
        let mut frontier = solution.frontier_at(&space, &x);
        frontier
            .sort_by(|(_, a), (_, b)| a[METRIC_TIME].partial_cmp(&b[METRIC_TIME]).expect("finite"));
        for (i, (plan, cost)) in frontier.iter().enumerate() {
            println!(
                "  p{} {:9.3} s  {:10.6} USD  {}",
                i + 1,
                cost[METRIC_TIME],
                cost[METRIC_FEES],
                solution.arena.display(*plan, &query)
            );
        }
        if frontier.len() > 1 {
            plot(&frontier);
        }
    }

    println!(
        "\nThe same precomputed plan set serves every user; no optimization \
         happens at run time (paper Figure 2)."
    );
}
